// Text cleaning pipeline: normalization, optional stop-word removal and
// stemming. This is the optional preprocessing stage shared by the sparse and
// dense NN workflows (Figure 2) and the CL parameter in Tables IV and V.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace erb::text {

/// Tokenizes `text` on whitespace after normalization (lower-case, strip
/// punctuation). With `clean` set, additionally removes stop words and stems
/// each remaining token with the Porter stemmer.
std::vector<std::string> CleanTokens(std::string_view text, bool clean);

/// Applies CleanTokens and re-joins with single spaces: the cleaned textual
/// form an NN method indexes (E1' / E2' in the paper's notation).
std::string CleanText(std::string_view text, bool clean);

}  // namespace erb::text
