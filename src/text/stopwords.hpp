// English stop-word list used by the optional cleaning step of the NN
// workflow (Figure 2 in the paper). Mirrors nltk's English list, which the
// reference implementation used.
#pragma once

#include <string_view>

namespace erb::text {

/// True if `word` (lower-case) is an English stop word.
bool IsStopWord(std::string_view word);

/// Number of entries in the stop-word list (for tests).
std::size_t StopWordCount();

}  // namespace erb::text
