#include "dirty/dataset.hpp"

#include <algorithm>
#include <stdexcept>

namespace erb::dirty {

DirtyDataset::DirtyDataset(
    std::string name, std::vector<core::EntityProfile> entities,
    std::vector<std::pair<core::EntityId, core::EntityId>> duplicates,
    std::string best_attribute)
    : name_(std::move(name)),
      entities_(std::move(entities)),
      duplicates_(std::move(duplicates)),
      best_attribute_(std::move(best_attribute)) {
  duplicate_keys_.reserve(duplicates_.size() * 2);
  for (const auto& [a, b] : duplicates_) {
    if (a >= entities_.size() || b >= entities_.size() || a == b) {
      throw std::out_of_range("invalid dirty ground-truth pair");
    }
    duplicate_keys_.insert(MakeDirtyPair(a, b));
  }
}

std::string DirtyDataset::EntityText(core::EntityId id,
                                     core::SchemaMode mode) const {
  const core::EntityProfile& profile = entities_.at(id);
  return mode == core::SchemaMode::kAgnostic ? profile.AllValues()
                                             : profile.ValueOf(best_attribute_);
}

void DirtyCandidateSet::Finalize() {
  std::sort(pairs_.begin(), pairs_.end());
  pairs_.erase(std::unique(pairs_.begin(), pairs_.end()), pairs_.end());
}

bool DirtyCandidateSet::Contains(core::EntityId a, core::EntityId b) const {
  return std::binary_search(pairs_.begin(), pairs_.end(), MakeDirtyPair(a, b));
}

core::Effectiveness Evaluate(const DirtyCandidateSet& candidates,
                             const DirtyDataset& dataset) {
  core::Effectiveness result;
  result.candidates = candidates.size();
  for (PairKey key : candidates) {
    if (dataset.IsDuplicate(key)) ++result.detected;
  }
  const std::size_t total = dataset.NumDuplicates();
  result.pc = total == 0 ? 0.0 : static_cast<double>(result.detected) / total;
  result.pq = result.candidates == 0
                  ? 0.0
                  : static_cast<double>(result.detected) / result.candidates;
  return result;
}

DirtyDataset MergeToDirty(const core::Dataset& dataset) {
  std::vector<core::EntityProfile> entities = dataset.e1();
  entities.insert(entities.end(), dataset.e2().begin(), dataset.e2().end());
  const auto offset = static_cast<core::EntityId>(dataset.e1().size());
  std::vector<std::pair<core::EntityId, core::EntityId>> duplicates;
  duplicates.reserve(dataset.NumDuplicates());
  for (const auto& [id1, id2] : dataset.duplicates()) {
    duplicates.emplace_back(id1, id2 + offset);
  }
  return DirtyDataset(dataset.name() + "-dirty", std::move(entities),
                      std::move(duplicates), dataset.best_attribute());
}

}  // namespace erb::dirty
