#include "dirty/filters.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/flat_dict.hpp"
#include "common/parallel.hpp"
#include "core/profile_store.hpp"
#include "densenn/embedding.hpp"
#include "obs/trace.hpp"
#include "text/clean.hpp"
#include "densenn/flat_index.hpp"
#include "sparsenn/scancount.hpp"

namespace erb::dirty {
namespace {

using core::EntityId;

// A dirty block: one entity list; comparisons = n*(n-1)/2.
struct DirtyBlock {
  std::vector<EntityId> entities;
  std::uint64_t Comparisons() const {
    const std::uint64_t n = entities.size();
    return n * (n - 1) / 2;
  }
};

// Columnar text store over a dirty dataset (byte-identical to EntityText).
core::ProfileStore StoreFor(const DirtyDataset& dataset, core::SchemaMode mode) {
  return core::ProfileStore(dataset.entities(), mode, dataset.best_attribute());
}

std::vector<DirtyBlock> BuildDirtyBlocks(const DirtyDataset& dataset,
                                         core::SchemaMode mode,
                                         const blocking::BuilderConfig& builder) {
  const core::ProfileStore store = StoreFor(dataset, mode);
  std::vector<DirtyBlock> blocks;
  StringDict key_to_block;  // dense first-appearance ids double as block ids
  blocking::KeyScratch scratch;
  for (EntityId id = 0; id < dataset.size(); ++id) {
    blocking::ExtractKeysInto(store.Text(id), builder, &scratch);
    for (const std::string_view key : scratch.keys) {
      const std::uint32_t next = static_cast<std::uint32_t>(blocks.size());
      const std::uint32_t block = key_to_block.FindOrAssign(key);
      if (block == next) blocks.emplace_back();
      blocks[block].entities.push_back(id);
    }
  }
  // A block needs >= 2 entities to induce any comparison.
  std::erase_if(blocks,
                [](const DirtyBlock& b) { return b.entities.size() < 2; });
  const bool proactive =
      builder.kind == blocking::BuilderKind::kSuffixArrays ||
      builder.kind == blocking::BuilderKind::kExtendedSuffixArrays;
  if (proactive) {
    std::erase_if(blocks, [&builder](const DirtyBlock& b) {
      return b.entities.size() >= static_cast<std::size_t>(builder.b_max);
    });
  }
  return blocks;
}

// Block Purging for dirty blocks: the half-collection rule plus the
// comparisons-per-assignment knee, mirroring the Clean-Clean implementation.
void PurgeDirtyBlocks(std::vector<DirtyBlock>* blocks, std::size_t n) {
  const std::size_t half = n / 2;
  std::erase_if(*blocks,
                [half](const DirtyBlock& b) { return b.entities.size() > half; });
  if (blocks->empty()) return;

  std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>> levels;
  for (const auto& block : *blocks) {
    auto& [comparisons, assignments] = levels[block.Comparisons()];
    comparisons += block.Comparisons();
    assignments += block.entities.size();
  }
  constexpr double kSmoothing = 1.025;
  std::uint64_t cut = levels.rbegin()->first;
  std::uint64_t cum_c = 0, cum_a = 0;
  double previous_ratio = 0.0;
  std::uint64_t previous_cardinality = 0;
  for (const auto& [cardinality, totals] : levels) {
    cum_c += totals.first;
    cum_a += totals.second;
    const double ratio = static_cast<double>(cum_c) / static_cast<double>(cum_a);
    if (previous_ratio > 0.0 && ratio > kSmoothing * previous_ratio) {
      cut = previous_cardinality;
    }
    previous_ratio = ratio;
    previous_cardinality = cardinality;
  }
  std::erase_if(*blocks,
                [cut](const DirtyBlock& b) { return b.Comparisons() > cut; });
}

// Block Filtering for dirty blocks: keep each entity in the smallest
// ceil(ratio * #blocks) of its blocks.
void FilterDirtyBlocks(std::vector<DirtyBlock>* blocks, double ratio,
                       std::size_t n) {
  if (ratio >= 1.0 || blocks->empty()) return;
  std::vector<std::vector<std::pair<std::uint64_t, std::uint32_t>>> per_entity(n);
  for (std::uint32_t b = 0; b < blocks->size(); ++b) {
    for (EntityId id : (*blocks)[b].entities) {
      per_entity[id].emplace_back((*blocks)[b].Comparisons(), b);
    }
  }
  std::vector<DirtyBlock> filtered(blocks->size());
  for (std::size_t id = 0; id < n; ++id) {
    auto& entity_blocks = per_entity[id];
    if (entity_blocks.empty()) continue;
    const std::size_t keep = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(ratio * static_cast<double>(entity_blocks.size()))));
    if (keep < entity_blocks.size()) {
      std::nth_element(entity_blocks.begin(), entity_blocks.begin() + keep - 1,
                       entity_blocks.end());
      entity_blocks.resize(keep);
    }
    for (const auto& [_, b] : entity_blocks) {
      filtered[b].entities.push_back(static_cast<EntityId>(id));
    }
  }
  std::erase_if(filtered,
                [](const DirtyBlock& b) { return b.entities.size() < 2; });
  *blocks = std::move(filtered);
}

}  // namespace

DirtyResult DirtyBlockingWorkflow(const DirtyDataset& dataset,
                                  core::SchemaMode mode,
                                  const blocking::BuilderConfig& builder,
                                  bool purge, double filter_ratio) {
  DirtyResult result;
  auto blocks = result.timing.Measure(
      "build", [&] { return BuildDirtyBlocks(dataset, mode, builder); });
  if (purge) {
    result.timing.Measure("purge", [&] { PurgeDirtyBlocks(&blocks, dataset.size()); });
  }
  if (filter_ratio < 1.0) {
    result.timing.Measure(
        "filter", [&] { FilterDirtyBlocks(&blocks, filter_ratio, dataset.size()); });
  }
  result.timing.Measure("clean", [&] {
    for (const auto& block : blocks) {
      for (std::size_t i = 0; i < block.entities.size(); ++i) {
        for (std::size_t j = i + 1; j < block.entities.size(); ++j) {
          result.candidates.Add(block.entities[i], block.entities[j]);
        }
      }
    }
    result.candidates.Finalize();
  });
  obs::CounterAdd("dirty.candidates", result.candidates.size());
  return result;
}

DirtyResult DirtyKnnJoin(const DirtyDataset& dataset, core::SchemaMode mode,
                         const sparsenn::SparseConfig& config, int k) {
  DirtyResult result;
  std::vector<sparsenn::TokenSet> sets(dataset.size());
  result.timing.Measure("preprocess", [&] {
    const core::ProfileStore store = StoreFor(dataset, mode);
    ParallelFor(0, dataset.size(), /*grain=*/0,
                [&](std::size_t begin, std::size_t end) {
                  for (std::size_t id = begin; id < end; ++id) {
                    sets[id] = sparsenn::BuildTokenSet(
                        store.Text(static_cast<EntityId>(id)), config.model,
                        config.clean);
                  }
                });
  });
  auto index = result.timing.Measure(
      "index", [&] { return sparsenn::ScanCountIndex(sets); });
  result.timing.Measure("query", [&] {
    std::vector<std::pair<EntityId, double>> matches;
    for (EntityId q = 0; q < sets.size(); ++q) {
      matches.clear();
      index.Probe(sets[q], [&](std::uint32_t id, std::uint32_t overlap,
                               std::uint32_t size) {
        if (id == q) return;  // self-match
        matches.emplace_back(id, sparsenn::SetSimilarity(config.measure, overlap,
                                                         sets[q].size(), size));
      });
      std::sort(matches.begin(), matches.end(),
                [](const auto& a, const auto& b) { return a.second > b.second; });
      int distinct = 0;
      double previous = -1.0;
      for (const auto& [id, sim] : matches) {
        if (sim != previous) {
          if (++distinct > k) break;
          previous = sim;
        }
        result.candidates.Add(q, id);
      }
    }
    result.candidates.Finalize();
  });
  obs::CounterAdd("dirty.candidates", result.candidates.size());
  return result;
}

DirtyResult DirtyEpsilonJoin(const DirtyDataset& dataset, core::SchemaMode mode,
                             const sparsenn::SparseConfig& config,
                             double threshold) {
  DirtyResult result;
  std::vector<sparsenn::TokenSet> sets(dataset.size());
  result.timing.Measure("preprocess", [&] {
    const core::ProfileStore store = StoreFor(dataset, mode);
    ParallelFor(0, dataset.size(), /*grain=*/0,
                [&](std::size_t begin, std::size_t end) {
                  for (std::size_t id = begin; id < end; ++id) {
                    sets[id] = sparsenn::BuildTokenSet(
                        store.Text(static_cast<EntityId>(id)), config.model,
                        config.clean);
                  }
                });
  });
  auto index = result.timing.Measure(
      "index", [&] { return sparsenn::ScanCountIndex(sets); });
  result.timing.Measure("query", [&] {
    for (EntityId q = 0; q < sets.size(); ++q) {
      index.Probe(sets[q], [&](std::uint32_t id, std::uint32_t overlap,
                               std::uint32_t size) {
        if (id <= q) return;  // each unordered pair once, no self-match
        if (sparsenn::SetSimilarity(config.measure, overlap, sets[q].size(),
                                    size) >= threshold) {
          result.candidates.Add(q, id);
        }
      });
    }
    result.candidates.Finalize();
  });
  obs::CounterAdd("dirty.candidates", result.candidates.size());
  return result;
}

DirtyResult DirtyDenseKnn(const DirtyDataset& dataset, core::SchemaMode mode,
                          bool clean, int k) {
  DirtyResult result;
  std::vector<densenn::Vector> vectors;
  result.timing.Measure("preprocess", [&] {
    vectors.reserve(dataset.size());
    for (EntityId id = 0; id < dataset.size(); ++id) {
      vectors.push_back(densenn::EmbedText(
          text::CleanText(dataset.EntityText(id, mode), clean)));
    }
  });
  auto index = result.timing.Measure("index", [&] {
    return densenn::FlatIndex(vectors, densenn::DenseMetric::kSquaredL2);
  });
  result.timing.Measure("query", [&] {
    for (EntityId q = 0; q < vectors.size(); ++q) {
      // k + 1 because the entity itself is its own nearest neighbour.
      for (auto id : index.Search(vectors[q], k + 1)) {
        if (id != q) result.candidates.Add(q, id);
      }
    }
    result.candidates.Finalize();
  });
  obs::CounterAdd("dirty.candidates", result.candidates.size());
  return result;
}

}  // namespace erb::dirty
