// Dirty ER filtering methods: the main filter of each family adapted to a
// single entity collection. Blocks hold one entity list and candidates are
// unordered within-set pairs; everything else mirrors the Clean-Clean
// implementations.
#pragma once

#include "blocking/builders.hpp"
#include "common/timer.hpp"
#include "dirty/dataset.hpp"
#include "sparsenn/joins.hpp"

namespace erb::dirty {

/// Result of a dirty filter run.
struct DirtyResult {
  DirtyCandidateSet candidates;
  PhaseTimer timing;
};

/// Token-blocking workflow for Dirty ER: block building with any of the five
/// builders, parameter-free Block Purging (half-collection rule + comparison
/// ratio), optional Block Filtering, and Comparison Propagation.
DirtyResult DirtyBlockingWorkflow(const DirtyDataset& dataset,
                                  core::SchemaMode mode,
                                  const blocking::BuilderConfig& builder,
                                  bool purge = true, double filter_ratio = 1.0);

/// Self kNN-join: every entity queries the index built over the whole
/// collection; self-matches are excluded; ties at the k-th distinct
/// similarity are retained, as in the Clean-Clean kNN-Join.
DirtyResult DirtyKnnJoin(const DirtyDataset& dataset, core::SchemaMode mode,
                         const sparsenn::SparseConfig& config, int k);

/// Self ε-join: all within-collection pairs with similarity >= threshold.
DirtyResult DirtyEpsilonJoin(const DirtyDataset& dataset, core::SchemaMode mode,
                             const sparsenn::SparseConfig& config,
                             double threshold);

/// Dense self kNN-search over subword embeddings (exact flat index).
DirtyResult DirtyDenseKnn(const DirtyDataset& dataset, core::SchemaMode mode,
                          bool clean, int k);

}  // namespace erb::dirty
