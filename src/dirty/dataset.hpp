// Dirty ER (Deduplication) — the paper's second ER task (Section III): one
// entity collection E that contains duplicates in itself. The paper's
// evaluation focuses on Clean-Clean ER; this module extends the library with
// first-class Dirty ER support so a downstream user can also deduplicate a
// single table with the same filter families.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/entity.hpp"
#include "core/metrics.hpp"

namespace erb::dirty {

/// An unordered within-collection pair (i, j), canonicalized to i < j.
using PairKey = std::uint64_t;

constexpr PairKey MakeDirtyPair(core::EntityId a, core::EntityId b) {
  const core::EntityId lo = a < b ? a : b;
  const core::EntityId hi = a < b ? b : a;
  return (static_cast<PairKey>(lo) << 32) | hi;
}

/// A single entity collection with duplicates in itself.
class DirtyDataset {
 public:
  DirtyDataset() = default;
  DirtyDataset(std::string name, std::vector<core::EntityProfile> entities,
               std::vector<std::pair<core::EntityId, core::EntityId>> duplicates,
               std::string best_attribute);

  const std::string& name() const { return name_; }
  const std::vector<core::EntityProfile>& entities() const { return entities_; }
  const std::vector<std::pair<core::EntityId, core::EntityId>>& duplicates()
      const {
    return duplicates_;
  }
  const std::string& best_attribute() const { return best_attribute_; }

  std::size_t size() const { return entities_.size(); }
  std::size_t NumDuplicates() const { return duplicates_.size(); }

  /// n * (n - 1) / 2 — the brute-force comparison count.
  std::uint64_t TotalPairs() const {
    const std::uint64_t n = entities_.size();
    return n * (n - 1) / 2;
  }

  bool IsDuplicate(PairKey key) const { return duplicate_keys_.contains(key); }

  /// The textual representation of entity `id` under `mode`.
  std::string EntityText(core::EntityId id, core::SchemaMode mode) const;

 private:
  std::string name_;
  std::vector<core::EntityProfile> entities_;
  std::vector<std::pair<core::EntityId, core::EntityId>> duplicates_;
  std::unordered_set<PairKey> duplicate_keys_;
  std::string best_attribute_;
};

/// A deduplicated set of within-collection candidate pairs.
class DirtyCandidateSet {
 public:
  void Add(core::EntityId a, core::EntityId b) {
    if (a == b) return;
    pairs_.push_back(MakeDirtyPair(a, b));
  }
  void Finalize();
  std::size_t size() const { return pairs_.size(); }
  bool empty() const { return pairs_.empty(); }
  std::vector<PairKey>::const_iterator begin() const { return pairs_.begin(); }
  std::vector<PairKey>::const_iterator end() const { return pairs_.end(); }
  bool Contains(core::EntityId a, core::EntityId b) const;

 private:
  std::vector<PairKey> pairs_;
};

/// PC / PQ over a dirty candidate set.
core::Effectiveness Evaluate(const DirtyCandidateSet& candidates,
                             const DirtyDataset& dataset);

/// Builds a Dirty ER instance by pooling both sides of a Clean-Clean dataset
/// (the standard construction of deduplication benchmarks): E2 entities get
/// ids offset by |E1|, and the cross-source matches become within-set
/// duplicates.
DirtyDataset MergeToDirty(const core::Dataset& dataset);

}  // namespace erb::dirty
