// CSV export of Clean-Clean ER datasets: lets users materialize the
// synthetic replicas (or any loaded dataset) for use by other tools, in the
// same three-file format LoadCsvDataset reads.
#pragma once

#include <string>

#include "core/entity.hpp"

namespace erb::datagen {

/// Writes `dataset` as e1_path / e2_path / groundtruth_path CSVs.
///
/// Record ids are "<side><index>" (e.g. "a17", "b3"). The header is the union
/// of attribute names in order of first appearance; fields are quoted when
/// they contain commas, quotes or newlines. Round-trips through
/// LoadCsvDataset. Throws std::runtime_error on I/O failure.
void WriteCsvDataset(const core::Dataset& dataset, const std::string& e1_path,
                     const std::string& e2_path,
                     const std::string& groundtruth_path);

}  // namespace erb::datagen
