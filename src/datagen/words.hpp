// Deterministic synthetic vocabulary.
//
// The dataset generators need words whose frequency distribution mimics real
// text: a small head of very frequent generic words (brand names, units,
// stop-word-like fillers) and a long tail of distinctive words (model
// numbers, titles, person names). Words are synthesized from consonant-vowel
// syllables so tokenizers, q-grams and stemming behave as they would on
// natural language.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.hpp"

namespace erb::datagen {

/// Synthesizes the `index`-th word of the pool identified by `pool_seed`.
/// Deterministic: the same (pool_seed, index) always yields the same word.
/// Length grows slowly with index so frequent words are short, like real text.
std::string SynthWord(std::uint64_t pool_seed, std::uint64_t index);

/// Synthesizes an alphanumeric code like "kx42-719b" — model numbers / SKU
/// identifiers that make product datasets distinctive.
std::string SynthCode(std::uint64_t pool_seed, std::uint64_t index);

/// A two-tier word source mimicking cleaned natural text: a tiny head of
/// stop-word-like fillers carrying `head_mass` of the probability (they form
/// the oversized blocks that Block Purging removes) and a flat tail of
/// content words (each appearing in a handful of entities — the mid-frequency
/// blocks that drive both true and superfluous candidate pairs).
class WordPool {
 public:
  WordPool(std::uint64_t pool_seed, std::uint64_t tail_size,
           std::uint64_t head_words, double head_mass, double head_zipf_s)
      : pool_seed_(pool_seed),
        tail_size_(tail_size),
        head_words_(head_words),
        head_mass_(head_mass),
        head_zipf_s_(head_zipf_s) {}

  /// Draws a word: head with probability head_mass, tail otherwise. The tail
  /// uses a gentle Zipf (s = 0.7) so block sizes form the smooth spectrum of
  /// real text rather than a bimodal one.
  std::string Draw(Rng& rng) const {
    if (head_words_ > 0 && rng.NextBool(head_mass_)) {
      return SynthWord(pool_seed_, rng.NextZipf(head_words_, head_zipf_s_));
    }
    return SynthWord(pool_seed_, head_words_ + rng.NextZipf(tail_size_, 0.7));
  }

  /// The word at a fixed rank (0-based; ranks below head_words are head).
  std::string At(std::uint64_t index) const { return SynthWord(pool_seed_, index); }

  std::uint64_t size() const { return head_words_ + tail_size_; }

 private:
  std::uint64_t pool_seed_;
  std::uint64_t tail_size_;
  std::uint64_t head_words_;
  double head_mass_;
  double head_zipf_s_;
};

}  // namespace erb::datagen
