#include "datagen/csv_loader.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/flat_dict.hpp"
#include "core/schema.hpp"

namespace erb::datagen {
namespace {

// Parses one CSV record, honouring quoted fields with doubled quotes.
// Returns false at end of stream. A record may span physical lines when a
// newline is embedded in a quoted field.
//
// Blank physical lines are skipped here, where they are distinguishable from
// records: a record whose only content is a quoted empty field ("") or a
// bare comma also yields empty strings, but it *starts* with a quote or
// comma and must not be mistaken for a blank line. A final record cut off by
// EOF — even inside an unterminated quoted field — is still emitted.
bool ReadCsvRecord(std::istream& in, std::vector<std::string>* fields) {
  fields->clear();
  std::string field;
  bool in_quotes = false;
  bool started = false;  // a quote, separator or field byte was seen
  char c;
  while (in.get(c)) {
    if (in_quotes) {
      if (c == '"') {
        if (in.peek() == '"') {
          in.get(c);
          field.push_back('"');
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
      started = true;
    } else if (c == ',') {
      fields->push_back(std::move(field));
      field.clear();
      started = true;
    } else if (c == '\n') {
      if (started) break;  // record complete; otherwise skip the blank line
    } else if (c != '\r') {
      field.push_back(c);
      started = true;
    }
  }
  if (!started) return false;
  fields->push_back(std::move(field));
  return true;
}

// Loads one side: returns profiles plus an interning dictionary from external
// id to EntityId (StringDict ids are dense in first-appearance order, which
// is exactly the record order here).
std::vector<core::EntityProfile> LoadSide(const std::string& path,
                                          StringDict* id_map) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open CSV file: " + path);

  std::vector<std::string> header;
  if (!ReadCsvRecord(in, &header) || header.size() < 2) {
    throw std::runtime_error("CSV needs a header with an id and >=1 attribute: " +
                             path);
  }

  std::vector<core::EntityProfile> profiles;
  std::vector<std::string> fields;
  while (ReadCsvRecord(in, &fields)) {
    core::EntityProfile profile;
    profile.attributes.reserve(header.size() - 1);
    for (std::size_t i = 1; i < header.size(); ++i) {
      profile.attributes.push_back(
          {header[i], i < fields.size() ? fields[i] : std::string()});
    }
    const auto next = static_cast<std::uint32_t>(profiles.size());
    if (id_map->FindOrAssign(fields[0]) != next) {
      throw std::runtime_error("duplicate record id '" + fields[0] + "' in " +
                               path);
    }
    profiles.push_back(std::move(profile));
  }
  return profiles;
}

}  // namespace

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> fields;
  ReadCsvRecord(in, &fields);  // false (no fields) on a blank line
  return fields;
}

core::Dataset LoadCsvDataset(const std::string& name, const std::string& e1_path,
                             const std::string& e2_path,
                             const std::string& groundtruth_path,
                             std::string best_attribute) {
  StringDict ids1;
  StringDict ids2;
  auto e1 = LoadSide(e1_path, &ids1);
  auto e2 = LoadSide(e2_path, &ids2);

  std::ifstream gt(groundtruth_path);
  if (!gt) throw std::runtime_error("cannot open ground truth: " + groundtruth_path);
  std::vector<std::pair<core::EntityId, core::EntityId>> duplicates;
  std::vector<std::string> fields;
  bool first = true;
  while (ReadCsvRecord(gt, &fields)) {
    if (fields.size() < 2) continue;
    const std::uint32_t id1 = ids1.Find(fields[0]);
    const std::uint32_t id2 = ids2.Find(fields[1]);
    if (id1 == StringDict::kAbsent || id2 == StringDict::kAbsent) {
      // Tolerate a header row; anything else is a data error.
      if (first) {
        first = false;
        continue;
      }
      throw std::runtime_error("ground-truth pair references unknown ids: " +
                               fields[0] + ", " + fields[1]);
    }
    first = false;
    duplicates.emplace_back(static_cast<core::EntityId>(id1),
                            static_cast<core::EntityId>(id2));
  }

  core::Dataset dataset(name, std::move(e1), std::move(e2), std::move(duplicates),
                        std::move(best_attribute));
  if (dataset.best_attribute().empty()) {
    const std::string best = core::SelectBestAttribute(dataset);
    // Rebuild with the selected attribute (Dataset is immutable by design).
    dataset = core::Dataset(dataset.name(), dataset.e1(), dataset.e2(),
                            dataset.duplicates(), best);
  }
  return dataset;
}

}  // namespace erb::datagen
