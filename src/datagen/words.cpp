#include "datagen/words.hpp"

#include "common/hash.hpp"

namespace erb::datagen {
namespace {

constexpr char kConsonants[] = "bcdfghjklmnpqrstvwz";
constexpr char kVowels[] = "aeiou";
constexpr std::uint64_t kNumConsonants = sizeof(kConsonants) - 1;
constexpr std::uint64_t kNumVowels = sizeof(kVowels) - 1;

// English filler words used for the head of a WordPool: like real text, the
// most frequent tokens are stop-words, which the cleaning step removes and
// Block Purging's giant blocks stem from.
constexpr const char* kFillerWords[] = {
    "the", "and", "with", "for",  "from", "this", "that",  "are",
    "has", "its", "new",  "all",  "one",  "more", "other", "some"};
constexpr std::uint64_t kNumFillers = sizeof(kFillerWords) / sizeof(kFillerWords[0]);

// Inflectional suffixes attached to a fraction of tail words so stemming
// (Porter) merges surface variants, as it does on natural text.
constexpr const char* kSuffixes[] = {"s", "ing", "ed"};

}  // namespace

std::string SynthWord(std::uint64_t pool_seed, std::uint64_t index) {
  // The first ranks of every pool are English stop-words (see kFillerWords):
  // they carry the head probability mass of WordPool draws.
  if (index < kNumFillers) return kFillerWords[index];

  // Adjacent odd/even indices share a stem: the odd one carries an
  // inflectional suffix, so stemming merges the two surface forms and shrinks
  // the vocabulary, as on real text.
  const std::uint64_t stem_index = index & ~1ULL;
  std::uint64_t h = SplitMix64(HashCombine(pool_seed, stem_index));
  // 2-5 syllables; frequent (low-index) words get fewer syllables, mimicking
  // the length/frequency anticorrelation of natural text.
  const int syllables = 2 + static_cast<int>((stem_index < 64 ? h % 2 : h % 4));
  std::string word;
  word.reserve(static_cast<std::size_t>(syllables) * 3 + 3);
  for (int s = 0; s < syllables; ++s) {
    h = SplitMix64(h);
    word.push_back(kConsonants[h % kNumConsonants]);
    word.push_back(kVowels[(h >> 8) % kNumVowels]);
    if ((h >> 16) % 3 == 0) word.push_back(kConsonants[(h >> 24) % kNumConsonants]);
  }
  if (index & 1) word += kSuffixes[SplitMix64(h) % 3];
  return word;
}

std::string SynthCode(std::uint64_t pool_seed, std::uint64_t index) {
  std::uint64_t h = SplitMix64(HashCombine(pool_seed ^ 0x5eedc0de, index));
  std::string code;
  code.reserve(9);
  code.push_back(kConsonants[h % kNumConsonants]);
  code.push_back(kConsonants[(h >> 6) % kNumConsonants]);
  code.push_back(static_cast<char>('0' + (h >> 12) % 10));
  code.push_back(static_cast<char>('0' + (h >> 18) % 10));
  code.push_back('-');
  code.push_back(static_cast<char>('0' + (h >> 24) % 10));
  code.push_back(static_cast<char>('0' + (h >> 30) % 10));
  code.push_back(static_cast<char>('0' + (h >> 36) % 10));
  code.push_back(kConsonants[(h >> 42) % kNumConsonants]);
  return code;
}

}  // namespace erb::datagen
