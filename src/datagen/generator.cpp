#include "datagen/generator.hpp"

#include <algorithm>
#include <numeric>

#include "common/hash.hpp"
#include "common/strings.hpp"
#include "datagen/words.hpp"

namespace erb::datagen {
namespace {

using core::Attribute;
using core::EntityId;
using core::EntityProfile;

// Renders the canonical token list of one attribute of one object.
// Distinctive tokens are derived purely from (object id, attribute, slot), so
// both sources regenerate them identically; generic tokens are drawn from the
// Zipf pool with a per-(object, attribute) seed, and the second source
// re-draws a `redraw` fraction with its own seed to model paraphrasing.
std::vector<std::string> RenderAttribute(const DatasetSpec& spec,
                                         const AttributeSpec& attr,
                                         std::uint64_t object_id, int source,
                                         double hardness) {
  std::vector<std::string> tokens;
  tokens.reserve(static_cast<std::size_t>(attr.distinct_words) +
                 attr.generic_words + (attr.include_code ? 1 : 0));

  const std::uint64_t attr_seed =
      HashCombine(spec.seed, FnvHash64(attr.name));
  const std::uint64_t object_seed = HashCombine(attr_seed, object_id);

  // Distinctive words: deterministic slots in a huge pool. Identical for both
  // sources — this is the signal that identifies the object. The first
  // family_share fraction of slots derives from the object's family instead,
  // so sibling objects (product lines, franchises) share those words.
  const std::uint64_t family_seed = HashCombine(
      attr_seed, 0xFA0 + object_id / std::max<std::uint64_t>(1, spec.family_size));
  const int family_words =
      static_cast<int>(attr.family_share * attr.distinct_words + 0.5);
  // Hard duplicates: the second source uses *different surface forms* for
  // the object-level distinctive words (name variants, alternate spellings)
  // with probability equal to the object's hardness, removing the easy
  // signal; only the family-level words and the weak generic overlap remain —
  // the confusable zone. Hardness is graded, so difficulty forms a continuum
  // rather than an easy/impossible split.
  Rng hard_rng(HashCombine(object_seed, 0x6a4d + source));
  for (int w = 0; w < attr.distinct_words; ++w) {
    const bool family_slot = w < family_words;
    std::uint64_t slot_seed = family_slot ? family_seed : object_seed;
    if (!family_slot && hardness > 0.0 && hard_rng.NextBool(hardness)) {
      slot_seed = HashCombine(slot_seed, 0xa17e);  // alternative surface form
    }
    const std::uint64_t index =
        SplitMix64(HashCombine(slot_seed, 0x0D15 + w)) % spec.distinct_vocab;
    tokens.push_back(SynthWord(attr_seed ^ 0xd157, index));
  }
  if (attr.include_code) {
    const bool drop_code =
        source == 1 && spec.e2_code_drop > 0.0 && hard_rng.NextBool(spec.e2_code_drop);
    if (!drop_code) {
      const bool swap_code = hardness > 0.0 && hard_rng.NextBool(hardness);
      tokens.push_back(SynthCode(attr_seed ^ (swap_code ? 0xa17e : 0), object_id));
    }
  }

  // Generic words: shared draw unless this slot is re-drawn by source 2.
  // Hard duplicates paraphrase almost everything.
  WordPool generic(spec.seed ^ 0x9e4e41c, spec.generic_vocab, spec.head_words,
                   spec.head_mass, spec.zipf_s);
  Rng shared_rng(HashCombine(object_seed, 0x6e4));
  Rng redraw_rng(HashCombine(object_seed, 0x7e5 + source));
  const double redraw_p = std::max(attr.redraw, hardness);
  for (int w = 0; w < attr.generic_words; ++w) {
    const std::string shared = generic.Draw(shared_rng);
    if (source == 1 && redraw_rng.NextBool(redraw_p)) {
      tokens.push_back(generic.Draw(redraw_rng));
    } else {
      tokens.push_back(shared);
    }
  }
  return tokens;
}

// Renders the full profile of `object_id` as seen by `source` (0 or 1).
EntityProfile RenderProfile(const DatasetSpec& spec, std::uint64_t object_id,
                            int source) {
  EntityProfile profile;
  profile.attributes.reserve(spec.attributes.size());
  Rng rng(HashCombine(HashCombine(spec.seed, object_id), 0xA0 + source));

  NoiseProfile noise = source == 1 ? spec.e2_noise : spec.e1_noise;
  const bool is_duplicate_object = object_id < spec.n_duplicates;

  // Hard-case duplicates: the second source renders them with alternative
  // distinctive surface forms (see RenderAttribute) and extra token noise,
  // pushing their pair similarity towards non-match territory (deterministic
  // per object). Hardness is drawn uniformly in (0.55, 1] for the hard
  // fraction so the difficulty of duplicates forms a continuum.
  double hardness = 0.0;
  if (source == 1 && is_duplicate_object && spec.hard_fraction > 0.0) {
    const std::uint64_t roll =
        SplitMix64(HashCombine(spec.seed, object_id ^ 0x4a8d)) % 10000;
    if (roll < static_cast<std::uint64_t>(spec.hard_fraction * 10000)) {
      hardness =
          0.55 + 0.45 * (SplitMix64(HashCombine(spec.seed, object_id + 0xb01d)) %
                         1000) /
                     1000.0;
      noise.typo_per_token = spec.hard_typo * hardness;
      noise.token_drop = spec.hard_drop * hardness;
      noise.token_reorder = 0.5;
    }
  }
  const bool may_misplace =
      noise.misplace_best > 0.0 &&
      !(spec.protect_duplicate_coverage && is_duplicate_object);

  std::string misplaced_value;  // best-attribute value displaced by noise
  for (const auto& attr : spec.attributes) {
    std::vector<std::string> tokens =
        RenderAttribute(spec, attr, object_id, source, hardness);
    ApplyTokenNoise(&tokens, noise, rng);
    std::string value = Join(tokens, " ");

    const bool is_best = attr.name == spec.best_attribute;
    if (is_best && may_misplace && rng.NextBool(noise.misplace_best)) {
      misplaced_value = std::move(value);
      value.clear();
    } else if (!is_best && noise.missing_attr > 0.0 &&
               rng.NextBool(noise.missing_attr)) {
      value.clear();
    }
    profile.attributes.push_back(Attribute{attr.name, std::move(value)});
  }

  // A misplaced key value lands in the last non-key attribute, mimicking the
  // extraction errors the paper describes ("values typically misplaced,
  // associated with a different attribute").
  if (!misplaced_value.empty()) {
    for (auto it = profile.attributes.rbegin(); it != profile.attributes.rend();
         ++it) {
      if (it->name != spec.best_attribute) {
        if (!it->value.empty()) it->value += ' ';
        it->value += misplaced_value;
        break;
      }
    }
  }
  return profile;
}

}  // namespace

core::EntityProfile RenderEntity(const DatasetSpec& spec,
                                 std::uint64_t object_id, int source) {
  return RenderProfile(spec, object_id, source);
}

core::Dataset Generate(const DatasetSpec& spec) {
  const std::size_t n_objects = spec.n1 + spec.n2 - spec.n_duplicates;

  std::vector<EntityProfile> e1;
  e1.reserve(spec.n1);
  for (std::uint64_t object = 0; object < spec.n1; ++object) {
    e1.push_back(RenderProfile(spec, object, 0));
  }

  // E2 objects: the duplicates [0, n_duplicates) plus the objects unique to
  // the second source [n1, n_objects).
  std::vector<std::uint64_t> e2_objects;
  e2_objects.reserve(spec.n2);
  for (std::uint64_t object = 0; object < spec.n_duplicates; ++object) {
    e2_objects.push_back(object);
  }
  for (std::uint64_t object = spec.n1; object < n_objects; ++object) {
    e2_objects.push_back(object);
  }

  // Deterministic shuffle so entity ids carry no alignment information.
  Rng shuffle_rng(HashCombine(spec.seed, 0x5af71e));
  for (std::size_t i = e2_objects.size(); i > 1; --i) {
    std::swap(e2_objects[i - 1], e2_objects[shuffle_rng.NextBounded(i)]);
  }

  std::vector<EntityProfile> e2;
  e2.reserve(spec.n2);
  std::vector<std::pair<EntityId, EntityId>> duplicates;
  duplicates.reserve(spec.n_duplicates);
  for (std::size_t position = 0; position < e2_objects.size(); ++position) {
    const std::uint64_t object = e2_objects[position];
    e2.push_back(RenderProfile(spec, object, 1));
    if (object < spec.n_duplicates) {
      duplicates.emplace_back(static_cast<EntityId>(object),
                              static_cast<EntityId>(position));
    }
  }

  return core::Dataset(spec.id, std::move(e1), std::move(e2),
                       std::move(duplicates), spec.best_attribute);
}

}  // namespace erb::datagen
