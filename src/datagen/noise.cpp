#include "datagen/noise.hpp"

#include <algorithm>

#include "datagen/words.hpp"

namespace erb::datagen {

std::string ApplyTypo(const std::string& token, Rng& rng) {
  if (token.empty()) return token;
  std::string out = token;
  const std::size_t pos = rng.NextBounded(out.size());
  const char random_char = static_cast<char>('a' + rng.NextBounded(26));
  switch (rng.NextBounded(4)) {
    case 0:  // substitution
      out[pos] = random_char;
      break;
    case 1:  // deletion
      if (out.size() > 1) out.erase(pos, 1);
      break;
    case 2:  // insertion
      out.insert(pos, 1, random_char);
      break;
    default:  // adjacent swap
      if (pos + 1 < out.size()) std::swap(out[pos], out[pos + 1]);
      break;
  }
  return out;
}

void ApplyTokenNoise(std::vector<std::string>* tokens, const NoiseProfile& noise,
                     Rng& rng) {
  std::vector<std::string> out;
  out.reserve(tokens->size());
  for (auto& token : *tokens) {
    if (noise.token_drop > 0.0 && rng.NextBool(noise.token_drop) &&
        tokens->size() > 1) {
      continue;
    }
    if (noise.abbreviate > 0.0 && rng.NextBool(noise.abbreviate) &&
        token.size() > 1) {
      out.push_back(token.substr(0, 1));
      continue;
    }
    if (noise.typo_per_token > 0.0 && rng.NextBool(noise.typo_per_token)) {
      out.push_back(ApplyTypo(token, rng));
      continue;
    }
    out.push_back(std::move(token));
    if (noise.extra_token > 0.0 && rng.NextBool(noise.extra_token)) {
      // A spurious filler word from a small shared pool: it collides across
      // unrelated entities, like the boilerplate in product descriptions.
      out.push_back(SynthWord(0xf111e4, rng.NextBounded(64)));
    }
  }
  if (out.empty() && !tokens->empty()) out.push_back((*tokens)[0]);
  if (noise.token_reorder > 0.0 && rng.NextBool(noise.token_reorder)) {
    // Fisher-Yates with the deterministic generator.
    for (std::size_t i = out.size(); i > 1; --i) {
      std::swap(out[i - 1], out[rng.NextBounded(i)]);
    }
  }
  *tokens = std::move(out);
}

}  // namespace erb::datagen
