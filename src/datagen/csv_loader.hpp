// CSV loading for real Clean-Clean ER datasets.
//
// Lets a downstream user run the benchmark on the paper's actual datasets
// (or their own): two CSV files with headers (first column = record id) and a
// ground-truth CSV of matching id pairs.
#pragma once

#include <string>
#include <vector>

#include "core/entity.hpp"

namespace erb::datagen {

/// Splits one CSV record into fields under the same quoting rules as
/// LoadCsvDataset (fields may be quoted with `"`, embedded quotes doubled).
/// A blank or whitespace-only line yields no fields. Exposed for the
/// `erbench serve` line protocol, which receives one CSV record per command.
std::vector<std::string> SplitCsvLine(const std::string& line);

/// Loads a Clean-Clean ER dataset from three CSV files.
///
/// `e1_path` / `e2_path`: header row names the attributes; the first column
/// is the record identifier. Fields may be quoted with `"` (embedded quotes
/// doubled). `groundtruth_path`: two columns, id-from-E1, id-from-E2.
/// `best_attribute` may be empty, in which case it is selected automatically
/// by coverage x distinctiveness.
core::Dataset LoadCsvDataset(const std::string& name, const std::string& e1_path,
                             const std::string& e2_path,
                             const std::string& groundtruth_path,
                             std::string best_attribute = "");

}  // namespace erb::datagen
