// Registry of the 10 benchmark datasets (Table VI replicas).
//
// PaperSpec(i) returns the specification of D_i at the paper's entity counts;
// the bench harness scales D5-D10 down by default (see BenchScale) so the
// full suite runs in minutes. All specs are deterministic.
#pragma once

#include <vector>

#include "core/entity.hpp"
#include "datagen/generator.hpp"
#include "datagen/spec.hpp"

namespace erb::datagen {

/// Number of benchmark datasets.
inline constexpr int kNumDatasets = 10;

/// The specification of dataset D_i (1-based, matching the paper's naming).
DatasetSpec PaperSpec(int index);

/// All ten specs in order.
std::vector<DatasetSpec> AllPaperSpecs();

/// True if the dataset's schema-based settings are part of the evaluation
/// (the paper excludes D5-D7 and D10 for insufficient best-attribute
/// coverage).
bool HasSchemaBasedSettings(int index);

/// Scale factor for bench runs: 1.0 normally, reduced for the large datasets
/// unless ERBENCH_FULL=1, tiny everywhere when ERBENCH_FAST=1.
double BenchScale(int index);

/// Convenience: generate D_i at BenchScale.
core::Dataset MakeBenchDataset(int index);

}  // namespace erb::datagen
