// Synthetic Clean-Clean ER dataset generator.
//
// Substitution note (see DESIGN.md §3): the paper evaluates on 10 real
// datasets that are not redistributable here. This generator produces
// replicas whose *filtering-relevant* statistics match: entity counts,
// duplicate counts, token sharing between duplicates, generic-token collisions
// between non-duplicates, and attribute coverage failures.
#pragma once

#include "core/entity.hpp"
#include "datagen/spec.hpp"

namespace erb::datagen {

/// Generates the dataset described by `spec`. Deterministic in spec.seed.
///
/// Construction: a pool of n1 + n2 - n_duplicates real-world objects is
/// synthesized; E1 renders objects [0, n1), E2 renders the first n_duplicates
/// objects again (through the second source's noise profile) plus the
/// remaining objects. E2 is deterministically shuffled so entity ids carry no
/// alignment signal.
core::Dataset Generate(const DatasetSpec& spec);

/// Renders the profile of one pooled object as seen by one source, exactly as
/// Generate() would: RenderEntity(spec, i, 0) equals Generate(spec).e1()[i]
/// for i < n1. Exposed so the scaled-replica generator (datagen/scale.hpp)
/// can stream entities one at a time instead of materializing a corpus.
///
/// \param spec The dataset specification (determinism comes from spec.seed).
/// \param object_id The pooled object to render, in [0, n1 + n2 -
///        n_duplicates) for Generate()'s pool — larger ids are valid and
///        render previously unseen objects (the scaled replicas use this).
/// \param source 0 for the first source's rendering, 1 for the second's.
core::EntityProfile RenderEntity(const DatasetSpec& spec,
                                 std::uint64_t object_id, int source);

}  // namespace erb::datagen
