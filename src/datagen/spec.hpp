// Declarative specification of a synthetic Clean-Clean ER dataset.
//
// Each of the paper's 10 datasets (Table VI) is described by one DatasetSpec
// capturing its size, schema, and the textual statistics that drive filtering
// behaviour: how distinctive the key attribute is, how long and generic the
// descriptions are, and how noisy each source's rendering is.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "datagen/noise.hpp"

namespace erb::datagen {

/// How one attribute's value is composed for an object.
struct AttributeSpec {
  std::string name;
  int distinct_words = 0;  ///< words from the long-tail distinctive pool
  int generic_words = 0;   ///< words from the skewed generic pool
  bool include_code = false;  ///< append a model/SKU-style code
  /// Fraction of this attribute's *generic* tokens that the duplicate's second
  /// rendering re-draws independently (0 = identical, 1 = fully re-drawn).
  /// Distinctive tokens are always shared — they identify the object.
  double redraw = 0.0;
  /// Fraction of the distinctive words drawn at the *family* level instead of
  /// the object level: objects of the same family (product lines, franchises,
  /// recurring authors) share them, creating the near-duplicate non-matches
  /// that make real ER datasets hard.
  double family_share = 0.0;
};

/// Full dataset specification. Seeds make generation deterministic.
struct DatasetSpec {
  std::string id;           ///< "D1" .. "D10"
  std::string description;  ///< e.g. "Abt / Buy product descriptions"
  std::size_t n1 = 0;
  std::size_t n2 = 0;
  std::size_t n_duplicates = 0;
  std::vector<AttributeSpec> attributes;
  std::string best_attribute;
  NoiseProfile e1_noise;    ///< noise of the first source's rendering
  NoiseProfile e2_noise;    ///< noise of the second source's rendering
  /// When true, objects that are duplicates never lose their best-attribute
  /// value to misplacement (models D1, where the selected attribute covers
  /// only 2/3 of all profiles but 100% of the duplicate ones).
  bool protect_duplicate_coverage = false;
  /// Fraction of duplicates rendered as *hard cases* by the second source:
  /// heavily corrupted tokens, so their pair similarity falls into the range
  /// of non-matching pairs. This tail is what separates PQ at the 0.9 recall
  /// target across datasets — a filter must dig deep (and admit many false
  /// positives) to recover them.
  double hard_fraction = 0.0;
  /// Token corruption applied to hard cases (replaces the regular e2 noise).
  double hard_typo = 0.35;
  double hard_drop = 0.25;
  /// Objects per confusable family (see AttributeSpec::family_share).
  std::size_t family_size = 6;
  /// Probability that the second source omits a model/SKU code entirely
  /// (e.g. Buy.com listings lacking the manufacturer part number that
  /// Abt.com carries) — removing the only object-unique token of a profile.
  double e2_code_drop = 0.0;
  std::uint64_t seed = 1;
  std::uint64_t generic_vocab = 3000;      ///< flat tail of the generic pool
  std::uint64_t head_words = 6;            ///< stop-word-like head of the pool
  double head_mass = 0.3;                  ///< probability mass of the head
  std::uint64_t distinct_vocab = 1 << 20;  ///< distinctive pool size
  double zipf_s = 0.0;      ///< skew within the head (0 = uniform head)

  /// Returns a copy with entity and duplicate counts multiplied by `factor`
  /// (floors applied so the result remains a valid Clean-Clean instance).
  DatasetSpec Scaled(double factor) const {
    DatasetSpec out = *this;
    if (factor == 1.0) return out;
    out.n1 = std::max<std::size_t>(8, static_cast<std::size_t>(n1 * factor));
    out.n2 = std::max<std::size_t>(8, static_cast<std::size_t>(n2 * factor));
    out.n_duplicates = std::max<std::size_t>(
        4, static_cast<std::size_t>(n_duplicates * factor));
    out.n_duplicates = std::min({out.n_duplicates, out.n1, out.n2});
    return out;
  }
};

}  // namespace erb::datagen
