#include "datagen/scale.hpp"

#include <algorithm>

namespace erb::datagen {

ScaleSpec ScaleSpec::ForTargetCorpus(DatasetSpec base,
                                     std::uint64_t target_entities) {
  ScaleSpec spec;
  spec.base = std::move(base);
  const std::uint64_t n1 = std::max<std::uint64_t>(1, spec.base.n1);
  spec.replicas = std::max<std::uint64_t>(1, (target_entities + n1 - 1) / n1);
  return spec;
}

std::string ScaledExternalId(const ScaleSpec& spec, std::uint64_t replica,
                             std::uint64_t index) {
  std::string id = spec.base.id;
  id += ":e1:";
  id += std::to_string(index);
  id += "#r";
  id += std::to_string(replica);
  return id;
}

core::EntityProfile RenderScaledEntity(const ScaleSpec& spec,
                                       std::uint64_t replica,
                                       std::uint64_t index) {
  return RenderEntity(spec.base, replica * spec.ObjectStride() + index,
                      /*source=*/0);
}

core::EntityProfile RenderScaledQuery(const ScaleSpec& spec,
                                      std::uint64_t replica,
                                      std::uint64_t index) {
  return RenderEntity(spec.base, replica * spec.ObjectStride() + index,
                      /*source=*/1);
}

}  // namespace erb::datagen
