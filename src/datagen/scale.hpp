// Scaled-replica corpora: D1–D10-style datasets replicated to 10–50M
// entities for the shard-partitioned pipeline (src/shard/).
//
// A ScaleSpec stacks `replicas` copies of a base spec's first-source
// collection. Replica r renders the object ids [r * stride, r * stride + n1)
// (stride = the base pool size n1 + n2 - n_duplicates), so replica 0 is
// *exactly* Generate(base).e1() and every later replica consists of
// previously unseen objects: their distinctive tokens are fresh draws from
// the same long-tail pool, while the generic Zipf pool is shared across all
// replicas — head-word document frequencies grow proportionally with the
// corpus, preserving the base dataset's token-frequency shape (the
// "frequency-preserving token noise" contract). External ids are the base
// ids suffix-salted with the replica ("D2:e1:17#r3"), so the FNV shard
// assignment spreads replicas independently.
//
// Entities are rendered one at a time (RenderEntity), never materialized as
// one Dataset: a 10M-entity corpus exists only shard-by-shard under the
// memory-budgeted rotation of shard/scale.hpp.
#pragma once

#include <cstdint>
#include <string>

#include "core/entity.hpp"
#include "datagen/generator.hpp"
#include "datagen/spec.hpp"

namespace erb::datagen {

/// \brief A corpus of `replicas` stacked copies of `base`'s first source.
struct ScaleSpec {
  DatasetSpec base;            ///< the D1–D10-style spec being replicated
  std::uint64_t replicas = 1;  ///< number of stacked E1 copies

  /// \brief Total corpus size: replicas * base.n1.
  std::uint64_t CorpusSize() const { return replicas * base.n1; }

  /// \brief The object-id stride between replicas (the base pool size), so
  ///        replica r's objects never collide with any other replica's.
  std::uint64_t ObjectStride() const {
    return base.n1 + base.n2 - base.n_duplicates;
  }

  /// \brief The smallest replica count whose corpus reaches
  ///        `target_entities` (at least 1).
  /// \param base The spec to replicate.
  /// \param target_entities Desired minimum corpus size.
  static ScaleSpec ForTargetCorpus(DatasetSpec base,
                                   std::uint64_t target_entities);
};

/// \brief The external id of corpus entity (replica, index):
///        "<base.id>:e1:<index>#r<replica>". The replica suffix salts the
///        FNV shard assignment so stacked copies of one base entity land on
///        independent shards.
/// \param spec The scaled corpus.
/// \param replica Replica number, in [0, spec.replicas).
/// \param index Entity index within the replica, in [0, spec.base.n1).
std::string ScaledExternalId(const ScaleSpec& spec, std::uint64_t replica,
                             std::uint64_t index);

/// \brief Renders corpus entity (replica, index) — the first source's view of
///        object replica * stride + index. Deterministic in spec.base.seed;
///        replica 0 reproduces Generate(spec.base).e1() entity-for-entity.
/// \param spec The scaled corpus.
/// \param replica Replica number, in [0, spec.replicas).
/// \param index Entity index within the replica, in [0, spec.base.n1).
core::EntityProfile RenderScaledEntity(const ScaleSpec& spec,
                                       std::uint64_t replica,
                                       std::uint64_t index);

/// \brief Renders the second source's view of the same object — the
///        near-duplicate query for corpus entity (replica, index), carrying
///        the base spec's e2 noise (typos, drops, paraphrased generic
///        tokens). Probing the corpus with these queries reproduces the base
///        dataset's match/non-match similarity structure at scale.
/// \param spec The scaled corpus.
/// \param replica Replica number, in [0, spec.replicas).
/// \param index Entity index within the replica, in [0, spec.base.n1).
core::EntityProfile RenderScaledQuery(const ScaleSpec& spec,
                                      std::uint64_t replica,
                                      std::uint64_t index);

}  // namespace erb::datagen
