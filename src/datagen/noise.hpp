// Noise operators applied when rendering the second source's view of an
// object. They model the error types the paper's datasets exhibit: character
// typos, dropped/reordered tokens, abbreviations, missing values, and the
// misplaced values that cause the best-attribute coverage failures of
// Figure 3(a).
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"

namespace erb::datagen {

/// Probabilities controlling how a duplicate's rendering diverges from the
/// canonical object. All are per-applicable-unit (per token / per value).
struct NoiseProfile {
  double typo_per_token = 0.0;   ///< char-level edit inside a token
  double token_drop = 0.0;       ///< token deleted
  double token_reorder = 0.0;    ///< whole value shuffled
  double abbreviate = 0.0;       ///< token reduced to its first letter
  double missing_attr = 0.0;     ///< non-key attribute left empty
  double misplace_best = 0.0;    ///< key attribute value moved elsewhere
  double extra_token = 0.0;      ///< spurious generic token inserted per slot
};

/// Applies one random character edit (substitute, delete, insert or swap).
std::string ApplyTypo(const std::string& token, Rng& rng);

/// Applies token-level noise (typos, drops, abbreviation, reorder) to a
/// token sequence in place.
void ApplyTokenNoise(std::vector<std::string>* tokens, const NoiseProfile& noise,
                     Rng& rng);

}  // namespace erb::datagen
