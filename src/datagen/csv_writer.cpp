#include "datagen/csv_writer.hpp"

#include <fstream>
#include <stdexcept>
#include <vector>

namespace erb::datagen {
namespace {

// Quotes a field if needed (RFC-4180 style: embedded quotes doubled).
std::string CsvField(const std::string& value) {
  if (value.find_first_of(",\"\n\r") == std::string::npos) return value;
  std::string out = "\"";
  for (char c : value) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += '"';
  return out;
}

// Union of attribute names over a side, in order of first appearance.
std::vector<std::string> CollectHeader(const std::vector<core::EntityProfile>& side) {
  std::vector<std::string> header;
  for (const auto& profile : side) {
    for (const auto& attr : profile.attributes) {
      bool known = false;
      for (const auto& name : header) known |= name == attr.name;
      if (!known) header.push_back(attr.name);
    }
  }
  return header;
}

void WriteSide(const std::string& path, const std::vector<core::EntityProfile>& side,
               char id_prefix) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write CSV file: " + path);
  const auto header = CollectHeader(side);
  out << "id";
  for (const auto& name : header) out << ',' << CsvField(name);
  out << '\n';
  for (std::size_t i = 0; i < side.size(); ++i) {
    out << id_prefix << i;
    for (const auto& name : header) {
      out << ',' << CsvField(side[i].ValueOf(name));
    }
    out << '\n';
  }
  if (!out) throw std::runtime_error("write failure: " + path);
}

}  // namespace

void WriteCsvDataset(const core::Dataset& dataset, const std::string& e1_path,
                     const std::string& e2_path,
                     const std::string& groundtruth_path) {
  WriteSide(e1_path, dataset.e1(), 'a');
  WriteSide(e2_path, dataset.e2(), 'b');
  std::ofstream gt(groundtruth_path);
  if (!gt) throw std::runtime_error("cannot write CSV file: " + groundtruth_path);
  for (const auto& [id1, id2] : dataset.duplicates()) {
    gt << 'a' << id1 << ',' << 'b' << id2 << '\n';
  }
  if (!gt) throw std::runtime_error("write failure: " + groundtruth_path);
}

}  // namespace erb::datagen
