#include "datagen/registry.hpp"

#include <cstdlib>
#include <stdexcept>

#include "common/env.hpp"

namespace erb::datagen {
namespace {

// Shorthand builders keep the specs below readable.
AttributeSpec Attr(std::string name, int distinct, int generic, double redraw,
                   bool code = false, double family_share = 0.0) {
  AttributeSpec a;
  a.name = std::move(name);
  a.distinct_words = distinct;
  a.generic_words = generic;
  a.redraw = redraw;
  a.include_code = code;
  a.family_share = family_share;
  return a;
}

// D1 — restaurant descriptions (OAEI 2010): tiny, clean key attribute that
// covers 2/3 of all profiles but every duplicate.
DatasetSpec MakeD1() {
  DatasetSpec s;
  s.id = "D1";
  s.description = "Restaurants 1 / Restaurants 2";
  s.n1 = 339;
  s.n2 = 2256;
  s.n_duplicates = 89;
  s.attributes = {Attr("name", 2, 1, 0.3, false, 0.5), Attr("addr", 1, 2, 0.4),
                  Attr("city", 0, 1, 0.1), Attr("phone", 0, 0, 0.0, true)};
  s.best_attribute = "name";
  s.e1_noise.misplace_best = 0.35;
  s.e2_noise.typo_per_token = 0.12;
  s.e2_noise.token_drop = 0.05;
  s.e2_noise.misplace_best = 0.35;
  s.protect_duplicate_coverage = true;
  s.hard_fraction = 0.15;
  s.seed = 101;
  s.generic_vocab = 3000;
  s.head_words = 2;
  s.head_mass = 0.45;
  return s;
}

// D2 — Abt / Buy products: short names with model codes, medium noisy
// descriptions; duplicates share name tokens strongly.
DatasetSpec MakeD2() {
  DatasetSpec s;
  s.id = "D2";
  s.description = "Abt / Buy products";
  s.n1 = 1076;
  s.n2 = 1076;
  s.n_duplicates = 1076;
  s.attributes = {Attr("name", 2, 2, 0.25, true, 1.0),
                  Attr("description", 1, 12, 0.8, false, 1.0),
                  Attr("price", 0, 1, 0.8)};
  s.best_attribute = "name";
  s.e2_noise.typo_per_token = 0.10;
  s.e2_noise.token_drop = 0.08;
  s.e2_noise.token_reorder = 0.2;
  s.e2_noise.missing_attr = 0.15;
  s.e2_code_drop = 0.6;
  s.hard_fraction = 0.22;
  s.seed = 202;
  s.generic_vocab = 3000;
  s.head_words = 4;
  s.head_mass = 0.3;
  return s;
}

// D3 — Amazon / Google Base products: duplicates share mostly generic/noisy
// content, driving precision down for every method (the paper's hardest
// dataset for PQ).
DatasetSpec MakeD3() {
  DatasetSpec s;
  s.id = "D3";
  s.description = "Amazon / Google Base products";
  s.n1 = 1354;
  s.n2 = 3039;
  s.n_duplicates = 1104;
  s.attributes = {Attr("title", 1, 5, 0.45, false, 1.0),
                  Attr("description", 0, 18, 0.85),
                  Attr("manufacturer", 0, 1, 0.3), Attr("price", 0, 1, 0.9)};
  s.best_attribute = "title";
  s.e2_noise.typo_per_token = 0.10;
  s.e2_noise.token_drop = 0.08;
  s.e2_noise.token_reorder = 0.4;
  s.e2_noise.missing_attr = 0.25;
  s.e2_noise.extra_token = 0.1;
  s.hard_fraction = 0.45;
  s.seed = 303;
  s.generic_vocab = 400;  // small pool -> heavy collisions between non-matches
  s.head_words = 6;
  s.head_mass = 0.4;
  return s;
}

// D4 — DBLP / ACM bibliography: long distinctive titles shared nearly
// verbatim; the easiest dataset (PQ ~ 0.95 in the paper).
DatasetSpec MakeD4() {
  DatasetSpec s;
  s.id = "D4";
  s.description = "DBLP / ACM bibliographic records";
  s.n1 = 2616;
  s.n2 = 2294;
  s.n_duplicates = 2224;
  s.attributes = {Attr("title", 5, 2, 0.1, false, 0.2),
                  Attr("authors", 3, 0, 0.0, false, 0.34),
                  Attr("venue", 0, 2, 0.2), Attr("year", 0, 1, 0.05)};
  s.best_attribute = "title";
  s.e2_noise.typo_per_token = 0.03;
  s.e2_noise.token_drop = 0.02;
  s.hard_fraction = 0.06;
  s.hard_typo = 0.25;
  s.hard_drop = 0.15;
  s.seed = 404;
  s.generic_vocab = 8000;
  s.head_words = 2;
  s.head_mass = 0.3;
  return s;
}

// D5/D6/D7 — IMDb / TMDb / TVDB movies and shows: short names, moderate
// noise, and the misplaced-value problem that breaks schema-based coverage
// (overall coverage 55-75%, ground-truth coverage 30-53%).
DatasetSpec MakeMovie(const char* id, const char* desc, std::size_t n1,
                      std::size_t n2, std::size_t dup, const char* best,
                      std::uint64_t seed, double misplace) {
  DatasetSpec s;
  s.id = id;
  s.description = desc;
  s.n1 = n1;
  s.n2 = n2;
  s.n_duplicates = dup;
  s.attributes = {Attr(best, 2, 1, 0.25, false, 0.5), Attr("year", 0, 1, 0.1),
                  Attr("genre", 0, 2, 0.5), Attr("overview", 1, 9, 0.8)};
  s.best_attribute = best;
  s.e1_noise.misplace_best = misplace;
  s.e2_noise.typo_per_token = 0.10;
  s.e2_noise.token_drop = 0.08;
  s.e2_noise.token_reorder = 0.3;
  s.e2_noise.misplace_best = misplace;
  s.e2_noise.missing_attr = 0.2;
  s.hard_fraction = 0.28;
  s.seed = seed;
  s.generic_vocab = 2500;
  s.head_words = 4;
  s.head_mass = 0.3;
  return s;
}

// D8 — Walmart / Amazon products: strong size asymmetry, few duplicates in a
// sea of similar products.
DatasetSpec MakeD8() {
  DatasetSpec s;
  s.id = "D8";
  s.description = "Walmart / Amazon products";
  s.n1 = 2554;
  s.n2 = 22074;
  s.n_duplicates = 853;
  s.attributes = {Attr("title", 2, 4, 0.5, true, 1.0),
                  Attr("description", 0, 14, 0.8), Attr("brand", 0, 1, 0.2),
                  Attr("price", 0, 1, 0.9)};
  s.best_attribute = "title";
  s.e2_noise.typo_per_token = 0.12;
  s.e2_noise.token_drop = 0.10;
  s.e2_noise.token_reorder = 0.35;
  s.e2_noise.missing_attr = 0.2;
  s.e2_code_drop = 0.7;
  s.family_size = 8;
  s.hard_fraction = 0.35;
  s.seed = 808;
  s.generic_vocab = 3500;
  s.head_words = 6;
  s.head_mass = 0.35;
  return s;
}

// D9 — DBLP / Google Scholar: bibliographic, clean titles, extreme asymmetry.
DatasetSpec MakeD9() {
  DatasetSpec s;
  s.id = "D9";
  s.description = "DBLP / Google Scholar bibliographic records";
  s.n1 = 2516;
  s.n2 = 61353;
  s.n_duplicates = 2308;
  s.attributes = {Attr("title", 4, 2, 0.2, false, 0.25),
                  Attr("authors", 2, 1, 0.3, false, 0.5),
                  Attr("venue", 0, 2, 0.5), Attr("year", 0, 1, 0.2)};
  s.best_attribute = "title";
  s.e2_noise.typo_per_token = 0.07;
  s.e2_noise.token_drop = 0.06;
  s.e2_noise.token_reorder = 0.15;
  s.e2_noise.missing_attr = 0.2;
  s.hard_fraction = 0.15;
  s.hard_typo = 0.35;
  s.seed = 909;
  s.generic_vocab = 8000;
  s.head_words = 2;
  s.head_mass = 0.3;
  return s;
}

// D10 — IMDb / DBpedia movies: the largest dataset; most entities are
// duplicates; coverage failure only on the DBpedia side.
DatasetSpec MakeD10() {
  DatasetSpec s;
  s.id = "D10";
  s.description = "IMDb / DBpedia movies";
  s.n1 = 27615;
  s.n2 = 23182;
  s.n_duplicates = 22863;
  s.attributes = {Attr("title", 2, 1, 0.2, false, 0.5),
                  Attr("director", 1, 0, 0.0, false, 1.0),
                  Attr("year", 0, 1, 0.1), Attr("abstract", 1, 8, 0.8)};
  s.best_attribute = "title";
  s.e2_noise.typo_per_token = 0.08;
  s.e2_noise.token_drop = 0.08;
  s.e2_noise.token_reorder = 0.25;
  s.e2_noise.misplace_best = 0.5;  // one constituent source only
  s.e2_noise.missing_attr = 0.15;
  s.hard_fraction = 0.20;
  s.seed = 1010;
  s.generic_vocab = 5000;
  s.head_words = 3;
  s.head_mass = 0.3;
  return s;
}

}  // namespace

DatasetSpec PaperSpec(int index) {
  switch (index) {
    case 1: return MakeD1();
    case 2: return MakeD2();
    case 3: return MakeD3();
    case 4: return MakeD4();
    case 5:
      return MakeMovie("D5", "IMDb / TMDb movies", 5118, 6056, 1968, "title",
                       505, 0.35);
    case 6:
      return MakeMovie("D6", "IMDb / TVDB shows", 5118, 7810, 1072, "name",
                       606, 0.40);
    case 7:
      return MakeMovie("D7", "TMDb / TVDB shows", 6056, 7810, 1095, "name",
                       707, 0.42);
    case 8: return MakeD8();
    case 9: return MakeD9();
    case 10: return MakeD10();
    default:
      throw std::out_of_range("dataset index must be in [1, 10]");
  }
}

std::vector<DatasetSpec> AllPaperSpecs() {
  std::vector<DatasetSpec> specs;
  specs.reserve(kNumDatasets);
  for (int i = 1; i <= kNumDatasets; ++i) specs.push_back(PaperSpec(i));
  return specs;
}

bool HasSchemaBasedSettings(int index) {
  return index != 5 && index != 6 && index != 7 && index != 10;
}

double BenchScale(int index) {
  // Both knobs go through the shared on/off parser (common/env.hpp):
  // ERBENCH_FAST=0 no longer silently selects the fast scales, and junk
  // values warn on stderr. Read per call, not latched, so a long-running
  // process that clears the variable gets the default scales back.
  if (ParseOnOff("ERBENCH_FAST", std::getenv("ERBENCH_FAST"), false)) {
    return index <= 4 ? 0.25 : 0.02;
  }
  if (ParseOnOff("ERBENCH_FULL", std::getenv("ERBENCH_FULL"), false)) {
    return 1.0;
  }
  // Default: paper size for the small clean datasets, reduced for the large
  // or candidate-heavy ones so the whole suite stays interactive on one core.
  switch (index) {
    case 3: return 0.4;
    case 5: case 6: case 7: return 0.15;
    case 8: return 0.12;
    case 9: return 0.08;
    case 10: return 0.06;
    default: return 1.0;
  }
}

core::Dataset MakeBenchDataset(int index) {
  return Generate(PaperSpec(index).Scaled(BenchScale(index)));
}

}  // namespace erb::datagen
