// Reproduces Figures 7, 8 and 9: the run-time breakdown of every filtering
// method — block building / purging / filtering / comparison cleaning for the
// blocking workflows, preprocessing / training / indexing / querying for the
// NN methods — per dataset and schema setting.
#include <cstdio>
#include <string>

#include "datagen/registry.hpp"
#include "harness.hpp"

namespace {

using namespace erb;

void PrintBreakdown(const bench::Setting& setting) {
  std::printf("--- %s ---\n", setting.Label().c_str());
  std::printf("%-12s %9s | %s\n", "method", "total", "phases");
  for (auto id : bench::SelectedMethods()) {
    const auto& r = bench::CachedRun(id, setting);
    std::printf("%-12s %9s |", std::string(tuning::MethodName(id)).c_str(),
                bench::FormatMs(r.runtime_ms).c_str());
    double total = 0.0;
    for (const auto& [_, ms] : r.phases) total += ms;
    for (const auto& [phase, ms] : r.phases) {
      std::printf(" %s=%.1f%%", phase.c_str(),
                  total > 0 ? 100.0 * ms / total : 0.0);
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  erb::bench::InitBench(argc, argv);
  const auto settings = bench::AllSettings();

  std::printf("=== Figure 7: schema-agnostic breakdown of D5-D7, D10 ===\n");
  for (const auto& setting : settings) {
    if (setting.mode != core::SchemaMode::kAgnostic) continue;
    if (datagen::HasSchemaBasedSettings(setting.dataset_index)) continue;
    PrintBreakdown(setting);
  }

  std::printf("\n=== Figure 8: schema-agnostic breakdown of D1-D4, D8-D9 ===\n");
  for (const auto& setting : settings) {
    if (setting.mode != core::SchemaMode::kAgnostic) continue;
    if (!datagen::HasSchemaBasedSettings(setting.dataset_index)) continue;
    PrintBreakdown(setting);
  }

  std::printf("\n=== Figure 9: schema-based breakdown of D1-D4, D8-D9 ===\n");
  for (const auto& setting : settings) {
    if (setting.mode != core::SchemaMode::kBased) continue;
    PrintBreakdown(setting);
  }
  return 0;
}
