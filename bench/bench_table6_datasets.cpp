// Reproduces Table VI: the technical characteristics of the benchmark
// datasets (entity counts, duplicates, Cartesian product, best attribute).
#include <cstdio>

#include "core/schema.hpp"
#include "datagen/registry.hpp"
#include "harness.hpp"

int main(int argc, char** argv) {
  erb::bench::InitBench(argc, argv);
  using namespace erb;
  std::printf("=== Table VI: dataset characteristics ===\n");
  std::printf("%-5s %-42s %9s %9s %10s %14s %-10s\n", "id", "E1 / E2", "|E1|",
              "|E2|", "dups", "cartesian", "best attr");
  for (int index : bench::SelectedDatasets()) {
    const auto& dataset = bench::CachedDataset(index);
    const auto spec = datagen::PaperSpec(index);
    std::printf("%-5s %-42s %9zu %9zu %10zu %14.2e %-10s\n",
                dataset.name().c_str(), spec.description.c_str(),
                dataset.e1().size(), dataset.e2().size(), dataset.NumDuplicates(),
                static_cast<double>(dataset.CartesianSize()),
                dataset.best_attribute().c_str());
  }

  std::printf("\n=== attribute statistics (supporting Table VI / Figure 3a) ===\n");
  for (int index : bench::SelectedDatasets()) {
    const auto& dataset = bench::CachedDataset(index);
    std::printf("--- %s ---\n", dataset.name().c_str());
    for (const auto& stats : core::ComputeAttributeStats(dataset)) {
      std::printf("  %-12s coverage=%.3f gt-coverage=%.3f distinctiveness=%.3f%s\n",
                  stats.name.c_str(), stats.coverage, stats.groundtruth_coverage,
                  stats.distinctiveness,
                  stats.name == dataset.best_attribute() ? "  <- best" : "");
    }
  }
  return 0;
}
