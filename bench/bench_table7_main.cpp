// Reproduces Table VII: PC, PQ and RT of all filtering methods over the
// schema-agnostic and schema-based settings, plus the best configurations
// (Tables VIII, IX, X).
//
// Method rows marked '*' missed the recall target (printed red in the paper).
#include <cstdio>
#include <string>
#include <vector>

#include "harness.hpp"

using erb::bench::AllSettings;
using erb::bench::CachedRun;
using erb::bench::Setting;

namespace {

void PrintHeader(const std::vector<Setting>& settings) {
  std::printf("%-12s", "method");
  for (const auto& setting : settings) std::printf(" %10s", setting.Label().c_str());
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  erb::bench::InitBench(argc, argv);
  const auto settings = AllSettings();
  const auto methods = erb::bench::SelectedMethods();

  // Run everything first (cached), so the three sub-tables align.
  for (const auto& setting : settings) {
    for (auto id : methods) CachedRun(id, setting);
  }

  std::printf("=== Table VII(a): PC (recall) — '*' marks PC < 0.9 ===\n");
  PrintHeader(settings);
  for (auto id : methods) {
    std::printf("%-12s", std::string(erb::tuning::MethodName(id)).c_str());
    for (const auto& setting : settings) {
      const auto& r = CachedRun(id, setting);
      std::printf(" %9.3f%s", r.eff.pc, r.reached_target ? " " : "*");
    }
    std::printf("\n");
  }

  std::printf("\n=== Table VII(b): PQ (precision) ===\n");
  PrintHeader(settings);
  for (auto id : methods) {
    std::printf("%-12s", std::string(erb::tuning::MethodName(id)).c_str());
    for (const auto& setting : settings) {
      const auto& r = CachedRun(id, setting);
      std::printf(" %10s", erb::bench::FormatPq(r.eff.pq).c_str());
    }
    std::printf("\n");
  }

  std::printf("\n=== Table VII(c): RT (run-time of the best configuration) ===\n");
  PrintHeader(settings);
  for (auto id : methods) {
    std::printf("%-12s", std::string(erb::tuning::MethodName(id)).c_str());
    for (const auto& setting : settings) {
      const auto& r = CachedRun(id, setting);
      std::printf(" %10s", erb::bench::FormatMs(r.runtime_ms).c_str());
    }
    std::printf("\n");
  }

  std::printf("\n=== Tables VIII-X: best configuration per method and setting ===\n");
  for (const auto& setting : settings) {
    std::printf("--- %s ---\n", setting.Label().c_str());
    for (auto id : methods) {
      const auto& r = CachedRun(id, setting);
      std::printf("  %-12s %s  (%zu configs tried)\n",
                  std::string(erb::tuning::MethodName(id)).c_str(),
                  r.config.c_str(), r.configurations_tried);
    }
  }
  return 0;
}
