// Reproduces Figure 3: (a) best-attribute coverage and ground-truth coverage,
// (b) vocabulary size and (c) overall character length under schema-agnostic
// and schema-based settings, with and without cleaning.
#include <cstdio>

#include "core/schema.hpp"
#include "datagen/registry.hpp"
#include "harness.hpp"

int main(int argc, char** argv) {
  erb::bench::InitBench(argc, argv);
  using namespace erb;

  std::printf("=== Figure 3(a): best-attribute coverage ===\n");
  std::printf("%-5s %-10s %10s %14s\n", "id", "attr", "coverage", "gt-coverage");
  for (int index : bench::SelectedDatasets()) {
    const auto& dataset = bench::CachedDataset(index);
    for (const auto& stats : core::ComputeAttributeStats(dataset)) {
      if (stats.name != dataset.best_attribute()) continue;
      std::printf("%-5s %-10s %10.3f %14.3f%s\n", dataset.name().c_str(),
                  stats.name.c_str(), stats.coverage, stats.groundtruth_coverage,
                  datagen::HasSchemaBasedSettings(index)
                      ? ""
                      : "   (schema-based settings excluded)");
    }
  }

  std::printf("\n=== Figure 3(b): vocabulary size (distinct tokens) ===\n");
  std::printf("%-5s %12s %12s %12s %12s\n", "id", "agnostic", "agn+clean",
              "based", "based+clean");
  double reduction_vocab = 0.0, reduction_clean = 0.0;
  int with_based = 0;
  for (int index : bench::SelectedDatasets()) {
    const auto& dataset = bench::CachedDataset(index);
    const auto agnostic =
        core::ComputeCorpusStats(dataset, core::SchemaMode::kAgnostic, false);
    const auto agnostic_clean =
        core::ComputeCorpusStats(dataset, core::SchemaMode::kAgnostic, true);
    const auto based =
        core::ComputeCorpusStats(dataset, core::SchemaMode::kBased, false);
    const auto based_clean =
        core::ComputeCorpusStats(dataset, core::SchemaMode::kBased, true);
    std::printf("%-5s %12zu %12zu %12zu %12zu\n", dataset.name().c_str(),
                agnostic.vocabulary_size, agnostic_clean.vocabulary_size,
                based.vocabulary_size, based_clean.vocabulary_size);
    if (datagen::HasSchemaBasedSettings(index)) {
      ++with_based;
      reduction_vocab += 1.0 - static_cast<double>(based.vocabulary_size) /
                                   agnostic.vocabulary_size;
    }
    reduction_clean += 1.0 - static_cast<double>(agnostic_clean.vocabulary_size) /
                                 agnostic.vocabulary_size;
  }
  std::printf("avg schema-based vocabulary reduction: %.1f%% (paper: 66.0%%)\n",
              100.0 * reduction_vocab / std::max(1, with_based));
  std::printf("avg cleaning vocabulary reduction:     %.1f%% (paper: 11.9%%)\n",
              100.0 * reduction_clean /
                  std::max<std::size_t>(1, bench::SelectedDatasets().size()));

  std::printf("\n=== Figure 3(c): overall character length ===\n");
  std::printf("%-5s %12s %12s %12s %12s\n", "id", "agnostic", "agn+clean",
              "based", "based+clean");
  for (int index : bench::SelectedDatasets()) {
    const auto& dataset = bench::CachedDataset(index);
    const auto agnostic =
        core::ComputeCorpusStats(dataset, core::SchemaMode::kAgnostic, false);
    const auto agnostic_clean =
        core::ComputeCorpusStats(dataset, core::SchemaMode::kAgnostic, true);
    const auto based =
        core::ComputeCorpusStats(dataset, core::SchemaMode::kBased, false);
    const auto based_clean =
        core::ComputeCorpusStats(dataset, core::SchemaMode::kBased, true);
    std::printf("%-5s %12zu %12zu %12zu %12zu\n", dataset.name().c_str(),
                agnostic.char_length, agnostic_clean.char_length,
                based.char_length, based_clean.char_length);
  }
  return 0;
}
