// Scalability bench supporting conclusion 3 (Section VII): the number of
// candidates produced by similarity-threshold methods grows quadratically
// with the input size, while cardinality-threshold methods grow linearly in
// the query set. Sweeps dataset scale and reports |C| and RT growth for one
// representative method per threshold type.
#include <cstdio>

#include "core/metrics.hpp"
#include "datagen/registry.hpp"
#include "harness.hpp"
#include "sparsenn/joins.hpp"

int main(int argc, char** argv) {
  erb::bench::InitBench(argc, argv);
  using namespace erb;

  std::printf("=== conclusion 3: |C| growth vs input size (D2 replica) ===\n");
  std::printf("%8s %8s | %12s %10s | %12s %10s\n", "scale", "|E|", "eJoin |C|",
              "RT", "kNNJ |C|", "RT");

  double previous_e = 0.0, previous_eps = 0.0, previous_knn = 0.0;
  for (double scale : {0.25, 0.5, 1.0}) {
    const auto dataset = datagen::Generate(datagen::PaperSpec(2).Scaled(scale));
    const double entities =
        static_cast<double>(dataset.e1().size() + dataset.e2().size());

    sparsenn::SparseConfig config;
    config.model = sparsenn::TokenModel::kC3G;
    // A low threshold, as ER requires (Section IV-C).
    const auto eps = sparsenn::EpsilonJoin(dataset, core::SchemaMode::kAgnostic,
                                           config, 0.18);
    const auto knn = sparsenn::KnnJoin(dataset, core::SchemaMode::kAgnostic,
                                       config, 3, false);

    std::printf("%8.2f %8.0f | %12zu %10s | %12zu %10s\n", scale, entities,
                eps.candidates.size(),
                bench::FormatMs(eps.timing.TotalMs()).c_str(),
                knn.candidates.size(),
                bench::FormatMs(knn.timing.TotalMs()).c_str());

    if (previous_e > 0.0) {
      const double size_ratio = entities / previous_e;
      std::printf("%17s input x%.1f -> eJoin |C| x%.1f (quadratic ~x%.1f), "
                  "kNNJ |C| x%.1f (linear ~x%.1f)\n",
                  "", size_ratio,
                  static_cast<double>(eps.candidates.size()) / previous_eps,
                  size_ratio * size_ratio,
                  static_cast<double>(knn.candidates.size()) / previous_knn,
                  size_ratio);
    }
    previous_e = entities;
    previous_eps = static_cast<double>(eps.candidates.size());
    previous_knn = static_cast<double>(knn.candidates.size());
  }

  std::printf("\nCardinality thresholds bound |C| by K * |queries| regardless "
              "of the indexed side's size;\nsimilarity thresholds admit every "
              "pair above the cutoff, which multiplies with both sides.\n");
  return 0;
}
