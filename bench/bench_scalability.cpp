// Scale-out headline bench (PR 10): the shard-partitioned ε filtering
// pipeline over D2-style scaled replicas, swept across an entities x shards
// grid. Each cell streams the corpus shard by shard (src/shard/scale.hpp) —
// render, tokenize, build, probe — honouring ERB_MEM_BUDGET_MB: when the
// projected resident set exceeds the budget the run rotates (one shard alive
// at a time), and the peak-RSS probe verifies the run actually stayed within
// it.
//
// Usage: bench_scalability [--json=PATH] [--threads=N] [--trace[=PATH]]
//   --json writes the grid (per-shard cells, schedules, peak RSS, shard.*
//   counters) as a JSON document, committed as BENCH_PR10.json.
//
// Grid: ERBENCH_FAST=1 runs a two-target smoke ({20k, 40k} x {1, 4} shards);
// the default grid climbs to a >= 10M-entity corpus at 8 shards. ERB_SHARDS
// does not drive this bench (the grid sweeps shard counts explicitly);
// ERB_MEM_BUDGET_MB overrides the per-cell budget when set.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "datagen/registry.hpp"
#include "datagen/scale.hpp"
#include "harness.hpp"
#include "obs/trace.hpp"
#include "shard/plan.hpp"
#include "shard/scale.hpp"

namespace {

using namespace erb;

struct GridCell {
  std::uint64_t target = 0;       // requested corpus size
  std::uint32_t num_shards = 1;   // shard count of this cell
  std::uint64_t num_queries = 0;  // probing queries
};

struct CellResult {
  GridCell cell;
  shard::ScaleRunResult run;
  std::uint64_t replicas = 0;
  std::size_t budget_mb = 0;
  bool within_budget = true;
  double total_render_ms = 0.0;
  double total_build_ms = 0.0;
  double total_probe_ms = 0.0;
};

const char* ScheduleName(shard::ShardSchedule schedule) {
  return schedule == shard::ShardSchedule::kRotate ? "rotate" : "resident";
}

CellResult RunCell(const datagen::DatasetSpec& base, const GridCell& cell,
                   std::size_t env_budget_mb) {
  CellResult out;
  out.cell = cell;
  shard::ScaleRunConfig config;
  config.spec = datagen::ScaleSpec::ForTargetCorpus(base, cell.target);
  config.threshold = 0.6;
  config.num_queries = cell.num_queries;
  config.options.num_shards = cell.num_shards;
  // Budget: the environment wins when set; otherwise the large cells get a
  // 2 GiB default so a 10M-entity corpus rotates instead of going resident
  // at several GB (the small cells stay unlimited = resident).
  out.budget_mb = env_budget_mb > 0 ? env_budget_mb
                  : cell.target >= 5'000'000 ? std::size_t{2048}
                                             : std::size_t{0};
  config.options.mem_budget_mb = out.budget_mb;
  out.replicas = config.spec.replicas;

  out.run = shard::RunScaleEpsilon(config);
  for (const auto& c : out.run.cells) {
    out.total_render_ms += c.render_ms;
    out.total_build_ms += c.build_ms;
    out.total_probe_ms += c.probe_ms;
  }
  out.within_budget =
      out.budget_mb == 0 ||
      out.run.peak_rss_bytes <= (static_cast<std::uint64_t>(out.budget_mb) << 20);
  return out;
}

void PrintCell(const CellResult& r) {
  std::printf("%10llu %7llu %7u %9s %8zu | %10.0f %10.0f %10.0f | %12llu %8.0f %s\n",
              static_cast<unsigned long long>(r.run.corpus_size),
              static_cast<unsigned long long>(r.replicas), r.run.num_shards,
              ScheduleName(r.run.schedule), r.budget_mb, r.total_render_ms,
              r.total_build_ms, r.total_probe_ms,
              static_cast<unsigned long long>(r.run.total_candidates),
              static_cast<double>(r.run.peak_rss_bytes) / (1 << 20),
              r.within_budget ? "ok" : "OVER-BUDGET");
  for (const auto& c : r.run.cells) {
    std::printf("      shard %3u: %9llu entities %11llu tokens | render %8.0f"
                " build %8.0f probe %8.0f ms | %10llu cand | rss %6.0f MB\n",
                c.shard, static_cast<unsigned long long>(c.entities),
                static_cast<unsigned long long>(c.tokens), c.render_ms,
                c.build_ms, c.probe_ms,
                static_cast<unsigned long long>(c.candidates),
                static_cast<double>(c.peak_rss_bytes) / (1 << 20));
  }
}

void WriteJson(const std::string& path, const std::string& base_id, bool fast,
               const std::vector<CellResult>& results,
               const std::map<std::string, std::uint64_t>& counters) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_scalability: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"scalability\",\n  \"base\": \"%s\",\n",
               base_id.c_str());
  std::fprintf(f, "  \"fast\": %s,\n  \"threads\": %zu,\n",
               fast ? "true" : "false", NumThreads());
  std::fprintf(f, "  \"cells\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    std::fprintf(f, "    {\"target_entities\": %llu, \"corpus_size\": %llu, "
                 "\"replicas\": %llu, \"num_shards\": %u, ",
                 static_cast<unsigned long long>(r.cell.target),
                 static_cast<unsigned long long>(r.run.corpus_size),
                 static_cast<unsigned long long>(r.replicas),
                 r.run.num_shards);
    std::fprintf(f, "\"schedule\": \"%s\", \"mem_budget_mb\": %zu, "
                 "\"projected_mb\": %llu, \"num_queries\": %llu, ",
                 ScheduleName(r.run.schedule), r.budget_mb,
                 static_cast<unsigned long long>(r.run.projected_bytes >> 20),
                 static_cast<unsigned long long>(r.cell.num_queries));
    std::fprintf(f, "\"render_ms\": %.1f, \"build_ms\": %.1f, "
                 "\"probe_ms\": %.1f, \"total_candidates\": %llu, "
                 "\"peak_rss_mb\": %.1f, \"within_budget\": %s,\n",
                 r.total_render_ms, r.total_build_ms, r.total_probe_ms,
                 static_cast<unsigned long long>(r.run.total_candidates),
                 static_cast<double>(r.run.peak_rss_bytes) / (1 << 20),
                 r.within_budget ? "true" : "false");
    std::fprintf(f, "     \"shards\": [\n");
    for (std::size_t s = 0; s < r.run.cells.size(); ++s) {
      const auto& c = r.run.cells[s];
      std::fprintf(f, "       {\"shard\": %u, \"entities\": %llu, "
                   "\"tokens\": %llu, \"render_ms\": %.1f, \"build_ms\": %.1f, "
                   "\"probe_ms\": %.1f, \"candidates\": %llu, "
                   "\"peak_rss_mb\": %.1f}%s\n",
                   c.shard, static_cast<unsigned long long>(c.entities),
                   static_cast<unsigned long long>(c.tokens), c.render_ms,
                   c.build_ms, c.probe_ms,
                   static_cast<unsigned long long>(c.candidates),
                   static_cast<double>(c.peak_rss_bytes) / (1 << 20),
                   s + 1 < r.run.cells.size() ? "," : "");
    }
    std::fprintf(f, "     ]}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"counters\": {\n");
  std::size_t remaining = 0;
  for (const auto& [name, value] : counters) {
    if (name.rfind("shard.", 0) == 0) ++remaining;
  }
  for (const auto& [name, value] : counters) {
    if (name.rfind("shard.", 0) != 0) continue;
    std::fprintf(f, "    \"%s\": %llu%s\n", name.c_str(),
                 static_cast<unsigned long long>(value),
                 --remaining > 0 ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  // --json is this bench's own (cell-structured) writer, not the harness's
  // tuning-record array: peel it off before InitBench sees the flags.
  std::string json_path;
  std::vector<char*> pass_through;
  pass_through.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      pass_through.push_back(argv[i]);
    }
  }
  bench::InitBench(static_cast<int>(pass_through.size()),
                   pass_through.data());

  // Counters drive the JSON "counters" block; recording them costs nothing
  // next to the corpus passes.
  obs::SetTraceEnabled(true);

  const bool fast = []() {
    const char* v = std::getenv("ERBENCH_FAST");
    return v != nullptr && std::string(v) == "1";
  }();
  const std::size_t env_budget_mb =
      shard::ResolveMemBudgetMb(shard::ShardOptions::kBudgetFromEnv);

  // D2-style base (product descriptions): every corpus is this spec
  // replicated (datagen/scale.hpp), so token-frequency shape is preserved
  // while the corpus grows to tens of millions of entities.
  const datagen::DatasetSpec base = datagen::PaperSpec(2);

  std::vector<GridCell> grid;
  if (fast) {
    grid = {{20'000, 1, 200}, {20'000, 4, 200}, {40'000, 4, 200}};
  } else {
    grid = {{1'000'000, 1, 500},  {1'000'000, 4, 500}, {1'000'000, 8, 500},
            {10'000'000, 8, 200}};
  }

  std::printf("=== scale-out: sharded e-join over %s replicas "
              "(threshold 0.6) ===\n", base.id.c_str());
  std::printf("%10s %7s %7s %9s %8s | %10s %10s %10s | %12s %8s\n", "|E|",
              "reps", "shards", "schedule", "budget", "render ms", "build ms",
              "probe ms", "|C|", "rss MB");

  std::vector<CellResult> results;
  for (const GridCell& cell : grid) {
    results.push_back(RunCell(base, cell, env_budget_mb));
    PrintCell(results.back());
    if (!results.back().within_budget) {
      std::fprintf(stderr,
                   "bench_scalability: peak RSS exceeded ERB_MEM_BUDGET_MB\n");
      return 1;
    }
  }

  // Candidates must agree across the shard counts of one target size — a
  // cheap standing differential on top of the ctest -L shard suite.
  for (std::size_t i = 1; i < results.size(); ++i) {
    if (results[i].cell.target == results[i - 1].cell.target &&
        results[i].cell.num_queries == results[i - 1].cell.num_queries &&
        results[i].run.total_candidates != results[i - 1].run.total_candidates) {
      std::fprintf(stderr,
                   "bench_scalability: candidate counts diverge across shard "
                   "counts at |E|=%llu\n",
                   static_cast<unsigned long long>(results[i].cell.target));
      return 1;
    }
  }

  const auto counters = obs::CounterSnapshot();
  if (!json_path.empty()) {
    WriteJson(json_path, base.id, fast, results, counters);
  }
  return 0;
}
