// Shared infrastructure of the benchmark binaries: dataset/method selection
// via environment variables, result caching, and table formatting.
//
// Environment knobs (all optional):
//   ERBENCH_DATASETS="2,3,4"  subset of datasets (default: all 10)
//   ERBENCH_METHODS="SBW,kNNJ" subset of methods (default: all 18)
//   ERBENCH_FAST=1             tiny datasets + 1 repetition (CI smoke)
//   ERBENCH_FULL=1             paper-scale dataset sizes
//   ERBENCH_FULL_GRID=1        the exact parameter grids of Tables III-V
//   ERBENCH_REPS=10            repetitions for stochastic methods
//   ERBENCH_JSON=out.json      machine-readable results (see InitBench)
//   ERB_TRACE=1                record trace spans/counters (src/obs/)
//   ERB_TRACE_OUT=trace.json   Chrome trace output path (default:
//                              erb_trace.json; open in chrome://tracing or
//                              Perfetto)
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/entity.hpp"
#include "tuning/suite.hpp"

namespace erb::bench {

/// One (dataset, schema mode) evaluation setting, e.g. D_a2 or D_b2.
struct Setting {
  int dataset_index;
  core::SchemaMode mode;

  /// Paper-style label: D1..D10 with an a/b subscript.
  std::string Label() const;
};

/// Parses the command-line flags shared by every bench binary and applies
/// them:
///   --threads=N  size of the parallel runtime's thread pool for this run
///                (overrides ERB_THREADS; 0 restores the default)
///   --json=PATH  write every result produced this run as a JSON array to
///                PATH at exit (ERBENCH_JSON=PATH is the env equivalent;
///                the flag wins). Each record carries the thread count it
///                was measured with plus a "stats" block of collector
///                counters/gauges and the peak RSS.
///   --trace[=PATH]  enable the obs collector (like ERB_TRACE=1) and write
///                a Chrome trace_event JSON to PATH (default: ERB_TRACE_OUT
///                or erb_trace.json) at exit.
/// Call at the top of main. Unknown --flags print usage and exit.
void InitBench(int argc, char** argv);

/// The datasets selected via ERBENCH_DATASETS (default: all).
std::vector<int> SelectedDatasets();

/// The methods selected via ERBENCH_METHODS (default: all of Table VII).
std::vector<tuning::MethodId> SelectedMethods();

/// All evaluation settings of Table VII for the selected datasets:
/// schema-agnostic for every dataset, schema-based where coverage allows.
std::vector<Setting> AllSettings();

/// Generates (and caches) the bench-scale dataset D_i.
const core::Dataset& CachedDataset(int index);

/// Runs (and caches) one method on one setting with GridOptions::FromEnv().
///
/// Results are also persisted under ERBENCH_CACHE_DIR (default:
/// ./bench_cache), keyed by method, setting, dataset scale and grid options,
/// so the per-table bench binaries share one tuning pass instead of each
/// re-running the full grid search. Delete the directory to force re-runs.
const tuning::TunedResult& CachedRun(tuning::MethodId id, const Setting& setting);

/// Formats milliseconds the way Table VII(c) does ("225 ms" / "3.5 s").
std::string FormatMs(double ms);

/// Formats a PQ value ("0.216" or "4.5e-04" below 0.001).
std::string FormatPq(double pq);

}  // namespace erb::bench
