// Reproduces Table XI: the number of candidate pairs per method, dataset and
// schema setting, plus the candidate-reduction-vs-brute-force analysis of
// conclusion 3 (Section VII).
#include <cstdio>
#include <string>

#include "harness.hpp"

int main(int argc, char** argv) {
  erb::bench::InitBench(argc, argv);
  using namespace erb;
  const auto settings = bench::AllSettings();
  const auto methods = bench::SelectedMethods();

  std::printf("=== Table XI: |C| per method and setting ('*' = PC < 0.9) ===\n");
  std::printf("%-12s", "method");
  for (const auto& setting : settings) std::printf(" %11s", setting.Label().c_str());
  std::printf("\n");
  for (auto id : methods) {
    std::printf("%-12s", std::string(tuning::MethodName(id)).c_str());
    for (const auto& setting : settings) {
      const auto& r = bench::CachedRun(id, setting);
      std::printf(" %10.3e%s", static_cast<double>(r.eff.candidates),
                  r.reached_target ? " " : "*");
    }
    std::printf("\n");
  }

  // Conclusion 3: candidate reduction relative to the brute-force Cartesian
  // product, averaged over the schema-agnostic settings.
  std::printf("\n=== candidate reduction vs brute force (schema-agnostic) ===\n");
  for (auto id : methods) {
    double reduction = 0.0;
    int n = 0;
    for (const auto& setting : settings) {
      if (setting.mode != core::SchemaMode::kAgnostic) continue;
      const auto& dataset = bench::CachedDataset(setting.dataset_index);
      const auto& r = bench::CachedRun(id, setting);
      reduction += 1.0 - static_cast<double>(r.eff.candidates) /
                             static_cast<double>(dataset.CartesianSize());
      ++n;
    }
    std::printf("%-12s avg reduction %.2f%%\n",
                std::string(tuning::MethodName(id)).c_str(),
                100.0 * reduction / std::max(1, n));
  }
  return 0;
}
