// Ablation benches for the design choices called out in DESIGN.md §6:
//   A1  Block Purging / Block Filtering on vs off inside a fixed workflow
//   A2  holistic vs step-by-step workflow tuning (the paper's §II argument)
//   A3  set vs multiset token models in sparse joins
//   A4  SCANN-style asymmetric hashing vs brute-force scoring
//   A5  embedding dimensionality sweep for the dense methods
//   A6  FAISS range search vs kNN search (the paper's Section IV-D claim)
//   A7  Sorted Neighborhood vs blocking workflows (excluded from the paper's
//       tables for consistently underperforming — reproduced here)
#include <cstdio>
#include <string>
#include <vector>

#include "blocking/cleaning.hpp"
#include "blocking/sorted_neighborhood.hpp"
#include "blocking/workflow.hpp"
#include "common/timer.hpp"
#include "densenn/flat_index.hpp"
#include "densenn/methods.hpp"
#include "harness.hpp"
#include "sparsenn/joins.hpp"
#include "tuning/metaeval.hpp"

namespace {

using namespace erb;

void AblationPurgingFiltering(const core::Dataset& dataset) {
  std::printf("--- A1 (%s): Block Purging / Filtering inside SBW+CP ---\n",
              dataset.name().c_str());
  for (bool purge : {false, true}) {
    for (double ratio : {1.0, 0.5}) {
      blocking::WorkflowConfig config;
      config.block_purging = purge;
      config.filter_ratio = ratio;
      const auto run =
          blocking::RunWorkflow(dataset, core::SchemaMode::kAgnostic, config);
      const auto eff = core::Evaluate(run.candidates, dataset);
      std::printf("  BP=%-3s BFr=%.1f  PC=%.3f PQ=%s |C|=%zu RT=%s\n",
                  purge ? "on" : "off", ratio, eff.pc,
                  bench::FormatPq(eff.pq).c_str(), eff.candidates,
                  bench::FormatMs(run.timing.TotalMs()).c_str());
    }
  }
}

// Step-by-step tuning: optimize block cleaning with Comparison Propagation
// fixed, then optimize comparison cleaning for the frozen block-cleaning
// choice. Holistic tuning explores the full cross product (this is what
// TuneBlockingWorkflow does); the paper argues holistic wins (§II).
void AblationHolisticVsStepwise(const core::Dataset& dataset) {
  const std::size_t n1 = dataset.e1().size();
  const std::size_t n2 = dataset.e2().size();
  const blocking::BuilderConfig builder;  // Standard Blocking
  const auto built =
      blocking::BuildBlocks(dataset, core::SchemaMode::kAgnostic, builder);

  const std::vector<double> ratios = {1.0, 0.8, 0.6, 0.4, 0.2};

  // Step 1 (stepwise): pick (BP, BFr) by the PQ of Comparison Propagation.
  core::Effectiveness best_step1;
  bool step1_purge = false;
  double step1_ratio = 1.0;
  bool have1 = false;
  // Holistic: track the best over the full cross product as we go.
  core::Effectiveness best_holistic;
  bool have_holistic = false;

  for (bool purge : {false, true}) {
    blocking::BlockCollection purged = built;
    if (purge) blocking::BlockPurging(&purged, n1, n2);
    for (double ratio : ratios) {
      blocking::BlockCollection blocks = purged;
      if (ratio < 1.0) blocking::BlockFiltering(&blocks, ratio, n1, n2);
      const auto sweep = tuning::EvaluateAllCleaning(blocks, dataset);
      if (!have1 || tuning::IsBetter(sweep[0].eff, best_step1, 0.9)) {
        have1 = true;
        best_step1 = sweep[0].eff;
        step1_purge = purge;
        step1_ratio = ratio;
      }
      for (const auto& outcome : sweep) {
        if (!have_holistic || tuning::IsBetter(outcome.eff, best_holistic, 0.9)) {
          have_holistic = true;
          best_holistic = outcome.eff;
        }
      }
      if (sweep[0].eff.pc < 0.9) break;
    }
  }

  // Step 2 (stepwise): optimize comparison cleaning on the frozen blocks.
  blocking::BlockCollection frozen = built;
  if (step1_purge) blocking::BlockPurging(&frozen, n1, n2);
  if (step1_ratio < 1.0) blocking::BlockFiltering(&frozen, step1_ratio, n1, n2);
  core::Effectiveness best_stepwise;
  bool have2 = false;
  for (const auto& outcome : tuning::EvaluateAllCleaning(frozen, dataset)) {
    if (!have2 || tuning::IsBetter(outcome.eff, best_stepwise, 0.9)) {
      have2 = true;
      best_stepwise = outcome.eff;
    }
  }

  std::printf(
      "--- A2 (%s): SBW tuning  stepwise PQ=%s (PC=%.3f)  holistic PQ=%s "
      "(PC=%.3f)\n",
      dataset.name().c_str(), bench::FormatPq(best_stepwise.pq).c_str(),
      best_stepwise.pc, bench::FormatPq(best_holistic.pq).c_str(),
      best_holistic.pc);
}

void AblationSetVsMultiset(const core::Dataset& dataset) {
  std::printf("--- A3 (%s): set vs multiset token models (kNN-Join, K=3) ---\n",
              dataset.name().c_str());
  for (auto model : {sparsenn::TokenModel::kC5G, sparsenn::TokenModel::kC5GM,
                     sparsenn::TokenModel::kT1G, sparsenn::TokenModel::kT1GM}) {
    sparsenn::SparseConfig config;
    config.model = model;
    const auto run =
        sparsenn::KnnJoin(dataset, core::SchemaMode::kAgnostic, config, 3, false);
    const auto eff = core::Evaluate(run.candidates, dataset);
    std::printf("  %-5s PC=%.3f PQ=%s RT=%s\n",
                std::string(sparsenn::ModelName(model)).c_str(), eff.pc,
                bench::FormatPq(eff.pq).c_str(),
                bench::FormatMs(run.timing.TotalMs()).c_str());
  }
}

void AblationScannScoring(const core::Dataset& dataset) {
  std::printf("--- A4 (%s): SCANN scoring AH vs BF (K=10) ---\n",
              dataset.name().c_str());
  for (bool ah : {false, true}) {
    densenn::KnnSearchConfig config;
    config.k = 10;
    densenn::PartitionedConfig scann;
    scann.asymmetric_hashing = ah;
    const auto run =
        densenn::ScannKnn(dataset, core::SchemaMode::kAgnostic, config, scann);
    const auto eff = core::Evaluate(run.candidates, dataset);
    std::printf("  %-2s PC=%.3f PQ=%s RT=%s\n", ah ? "AH" : "BF", eff.pc,
                bench::FormatPq(eff.pq).c_str(),
                bench::FormatMs(run.timing.TotalMs()).c_str());
  }
}

void AblationEmbeddingDim(const core::Dataset& dataset) {
  std::printf("--- A5 (%s): embedding dimensionality (exact kNN, K=10) ---\n",
              dataset.name().c_str());
  for (int dim : {50, 100, 300, 600}) {
    Timer timer;
    const auto indexed =
        densenn::EmbedSide(dataset, 0, core::SchemaMode::kAgnostic, true, dim);
    const auto queries =
        densenn::EmbedSide(dataset, 1, core::SchemaMode::kAgnostic, true, dim);
    densenn::FlatIndex index(indexed, densenn::DenseMetric::kSquaredL2);
    core::CandidateSet candidates;
    const auto neighbors = index.SearchBatch(queries, 10);
    for (core::EntityId q = 0; q < queries.size(); ++q) {
      for (auto id : neighbors[q]) candidates.Add(id, q);
    }
    candidates.Finalize();
    const auto eff = core::Evaluate(candidates, dataset);
    std::printf("  dim=%-4d PC=%.3f PQ=%s RT=%s\n", dim, eff.pc,
                bench::FormatPq(eff.pq).c_str(),
                bench::FormatMs(timer.ElapsedMs()).c_str());
  }
}

// The paper: "FAISS also supports range (similarity) search, but our
// experiments showed that it consistently underperforms kNN search."
// We compare both at matched recall: the radius is chosen as the smallest
// one reaching the kNN run's PC.
void AblationRangeVsKnn(const core::Dataset& dataset) {
  const auto indexed =
      densenn::EmbedSide(dataset, 0, core::SchemaMode::kAgnostic, true);
  const auto queries =
      densenn::EmbedSide(dataset, 1, core::SchemaMode::kAgnostic, true);
  densenn::FlatIndex index(indexed, densenn::DenseMetric::kSquaredL2);

  core::CandidateSet knn;
  const auto neighbors = index.SearchBatch(queries, 10);
  for (core::EntityId q = 0; q < queries.size(); ++q) {
    for (auto id : neighbors[q]) knn.Add(id, q);
  }
  knn.Finalize();
  const auto knn_eff = core::Evaluate(knn, dataset);

  core::Effectiveness range_eff;
  float chosen_radius = 0.0f;
  for (float radius : {0.4f, 0.8f, 1.2f, 1.6f, 2.0f}) {
    core::CandidateSet range;
    const auto in_range = index.RangeSearchBatch(queries, radius);
    for (core::EntityId q = 0; q < queries.size(); ++q) {
      for (auto id : in_range[q]) range.Add(id, q);
    }
    range.Finalize();
    range_eff = core::Evaluate(range, dataset);
    chosen_radius = radius;
    if (range_eff.pc >= knn_eff.pc) break;
  }
  std::printf(
      "--- A6 (%s): kNN K=10 PC=%.3f PQ=%s  |  range r=%.1f PC=%.3f PQ=%s\n",
      dataset.name().c_str(), knn_eff.pc, bench::FormatPq(knn_eff.pq).c_str(),
      chosen_radius, range_eff.pc, bench::FormatPq(range_eff.pq).c_str());
}

void AblationSortedNeighborhood(const core::Dataset& dataset) {
  const auto pbw = blocking::RunWorkflow(dataset, core::SchemaMode::kAgnostic,
                                         blocking::ParameterFreeWorkflow());
  const auto pbw_eff = core::Evaluate(pbw.candidates, dataset);
  std::printf("--- A7 (%s): PBW PC=%.3f PQ=%s", dataset.name().c_str(),
              pbw_eff.pc, bench::FormatPq(pbw_eff.pq).c_str());
  for (int window : {10, 40, 100}) {
    const auto sn =
        blocking::SortedNeighborhood(dataset, core::SchemaMode::kAgnostic, window);
    const auto eff = core::Evaluate(sn, dataset);
    std::printf("  |  SN(w=%d) PC=%.3f PQ=%s", window, eff.pc,
                bench::FormatPq(eff.pq).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  erb::bench::InitBench(argc, argv);
  for (int index : bench::SelectedDatasets()) {
    if (index > 4) continue;  // ablations target the four small datasets
    const auto& dataset = bench::CachedDataset(index);
    AblationPurgingFiltering(dataset);
    AblationHolisticVsStepwise(dataset);
    AblationSetVsMultiset(dataset);
    AblationScannScoring(dataset);
    AblationEmbeddingDim(dataset);
    AblationRangeVsKnn(dataset);
    AblationSortedNeighborhood(dataset);
    std::printf("\n");
  }
  return 0;
}
