#include "harness.hpp"

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "common/parallel.hpp"
#include "common/strings.hpp"
#include "datagen/registry.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "sparsenn/joins.hpp"

namespace erb::bench {
namespace {

// ---------------------------------------------------------------------------
// On-disk result cache shared by all bench binaries.
// ---------------------------------------------------------------------------

// Bump whenever the serialized TunedResult layout or the semantics of any
// field change. Entries with a different (or missing) version are ignored
// with a stderr note instead of being deserialized into garbage.
constexpr int kCacheFormatVersion = 3;

std::string CacheDir() {
  const char* dir = std::getenv("ERBENCH_CACHE_DIR");
  return dir != nullptr ? dir : "bench_cache";
}

std::string CachePath(tuning::MethodId id, const Setting& setting) {
  const auto options = tuning::GridOptions::FromEnv();
  std::ostringstream path;
  path << CacheDir() << "/" << tuning::MethodName(id) << "_" << setting.Label()
       << "_s" << static_cast<int>(
                      datagen::BenchScale(setting.dataset_index) * 1000)
       << "_g" << (options.full_grid ? 1 : 0) << "_r" << options.repetitions
       << "_t" << NumThreads()  // RT depends on the pool size
       // RT (not the results) also depends on the sparse probe filter mode.
       << (sparsenn::ResolveFilterMode(sparsenn::FilterMode::kAuto) ==
                   sparsenn::FilterMode::kPrefix
               ? "_fp"
               : "_fl")
       << ".result";
  return path.str();
}

bool LoadCachedResult(const std::string& path, tuning::TunedResult* result) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  // The first line must declare a matching format version; legacy files
  // (no version line) predate the field and are equally unreadable.
  if (!std::getline(in, line) ||
      line != "version\t" + std::to_string(kCacheFormatVersion)) {
    std::fprintf(stderr,
                 "[cache] ignoring %s: format version mismatch "
                 "(want %d); it will be regenerated\n",
                 path.c_str(), kCacheFormatVersion);
    return false;
  }
  while (std::getline(in, line)) {
    const auto sep = line.find('\t');
    if (sep == std::string::npos) continue;
    const std::string key = line.substr(0, sep);
    const std::string value = line.substr(sep + 1);
    if (key == "method") {
      result->method = value;
    } else if (key == "config") {
      result->config = value;
    } else if (key == "pc") {
      result->eff.pc = std::atof(value.c_str());
    } else if (key == "pq") {
      result->eff.pq = std::atof(value.c_str());
    } else if (key == "candidates") {
      result->eff.candidates = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "detected") {
      result->eff.detected = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "runtime_ms") {
      result->runtime_ms = std::atof(value.c_str());
    } else if (key == "reached") {
      result->reached_target = value == "1";
    } else if (key == "tried") {
      result->configurations_tried = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key.rfind("phase.", 0) == 0) {
      result->phases[key.substr(6)] = std::atof(value.c_str());
    }
  }
  return !result->method.empty();
}

void StoreCachedResult(const std::string& path, const tuning::TunedResult& result) {
  ::mkdir(CacheDir().c_str(), 0755);
  std::ofstream out(path);
  if (!out) return;
  out << "version\t" << kCacheFormatVersion << "\n";
  out << "method\t" << result.method << "\n";
  out << "config\t" << result.config << "\n";
  out << "pc\t" << result.eff.pc << "\n";
  out << "pq\t" << result.eff.pq << "\n";
  out << "candidates\t" << result.eff.candidates << "\n";
  out << "detected\t" << result.eff.detected << "\n";
  out << "runtime_ms\t" << result.runtime_ms << "\n";
  out << "reached\t" << (result.reached_target ? 1 : 0) << "\n";
  out << "tried\t" << result.configurations_tried << "\n";
  for (const auto& [phase, ms] : result.phases) {
    out << "phase." << phase << "\t" << ms << "\n";
  }
}

std::vector<std::string> EnvList(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr) return {};
  std::vector<std::string> items;
  for (auto& item : SplitChar(value, ',')) {
    auto trimmed = Trim(item);
    if (!trimmed.empty()) items.emplace_back(trimmed);
  }
  return items;
}

// ---------------------------------------------------------------------------
// JSON result log (--json=PATH / ERBENCH_JSON).
// ---------------------------------------------------------------------------

struct JsonRecord {
  std::string method;
  std::string setting;
  std::size_t threads;  // pool size the record was produced with
  tuning::TunedResult result;
  // Collector stats for this run: counter deltas attributable to it, the
  // gauges as of its end, and the process peak RSS. Empty (apart from RSS)
  // when tracing is off.
  obs::Snapshot stats;
};

// Both singletons are leaked: FlushJson runs from atexit, which would race
// static destruction if these had destructors registered.
std::string& JsonPath() {
  static std::string* path = new std::string([] {
    const char* env = std::getenv("ERBENCH_JSON");
    return env != nullptr ? std::string(env) : std::string();
  }());
  return *path;
}

std::vector<JsonRecord>& JsonRecords() {
  static std::vector<JsonRecord>* records = new std::vector<JsonRecord>();
  return *records;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void FlushJson() {
  if (JsonPath().empty()) return;
  std::ofstream out(JsonPath());
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", JsonPath().c_str());
    return;
  }
  out << "[\n";
  bool first = true;
  for (const auto& record : JsonRecords()) {
    if (!first) out << ",\n";
    first = false;
    const auto& r = record.result;
    out << "  {\"method\": \"" << JsonEscape(record.method) << "\""
        << ", \"setting\": \"" << JsonEscape(record.setting) << "\""
        << ", \"threads\": " << record.threads
        << ", \"pc\": " << r.eff.pc << ", \"pq\": " << r.eff.pq
        << ", \"candidates\": " << r.eff.candidates
        << ", \"detected\": " << r.eff.detected
        << ", \"runtime_ms\": " << r.runtime_ms
        << ", \"reached_target\": " << (r.reached_target ? "true" : "false")
        << ", \"configurations_tried\": " << r.configurations_tried
        << ", \"config\": \"" << JsonEscape(r.config) << "\""
        << ", \"phases\": {";
    bool first_phase = true;
    for (const auto& [phase, ms] : r.phases) {
      if (!first_phase) out << ", ";
      first_phase = false;
      out << "\"" << JsonEscape(phase) << "\": " << ms;
    }
    out << "}, \"stats\": " << obs::StatsJson(record.stats) << "}";
  }
  out << "\n]\n";
}

void RecordJson(tuning::MethodId id, const Setting& setting,
                const tuning::TunedResult& result, const obs::Snapshot& stats) {
  if (JsonPath().empty()) return;
  static const bool registered = [] {
    std::atexit(FlushJson);
    return true;
  }();
  (void)registered;
  JsonRecords().push_back({std::string(tuning::MethodName(id)),
                           setting.Label(), NumThreads(), result, stats});
}

// ---------------------------------------------------------------------------
// Chrome trace output (ERB_TRACE / --trace).
// ---------------------------------------------------------------------------

// Leaked for the same atexit reason as the JSON singletons.
std::string& TracePath() {
  static std::string* path = new std::string([] {
    const char* env = std::getenv("ERB_TRACE_OUT");
    return env != nullptr && *env != '\0' ? std::string(env)
                                          : std::string("erb_trace.json");
  }());
  return *path;
}

void FlushTrace() {
  if (!obs::TraceEnabled()) return;
  const obs::Snapshot snapshot = obs::Collect();
  if (!obs::WriteChromeTraceFile(snapshot, TracePath())) {
    std::fprintf(stderr, "cannot write %s\n", TracePath().c_str());
    return;
  }
  std::fprintf(stderr, "[trace] %zu spans -> %s\n", snapshot.spans.size(),
               TracePath().c_str());
}

void RegisterTraceFlush() {
  static const bool registered = [] {
    std::atexit(FlushTrace);
    return true;
  }();
  (void)registered;
}

}  // namespace

void InitBench(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      SetNumThreads(std::strtoull(arg.c_str() + 10, nullptr, 10));
    } else if (arg.rfind("--json=", 0) == 0) {
      JsonPath() = arg.substr(7);
    } else if (arg == "--trace") {
      obs::SetTraceEnabled(true);
    } else if (arg.rfind("--trace=", 0) == 0) {
      obs::SetTraceEnabled(true);
      TracePath() = arg.substr(8);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--threads=N] [--json=PATH] [--trace[=PATH]]\n"
                   "unknown argument: %s\n",
                   argv[0], arg.c_str());
      std::exit(2);
    }
  }
  // Covers both the flag and ERB_TRACE=1; registering when tracing is off
  // would be harmless (FlushTrace no-ops) but pointless.
  if (obs::TraceEnabled()) RegisterTraceFlush();
}

std::string Setting::Label() const {
  return "D" + std::string(mode == core::SchemaMode::kAgnostic ? "a" : "b") +
         std::to_string(dataset_index);
}

std::vector<int> SelectedDatasets() {
  const auto items = EnvList("ERBENCH_DATASETS");
  if (items.empty()) {
    std::vector<int> all;
    for (int i = 1; i <= datagen::kNumDatasets; ++i) all.push_back(i);
    return all;
  }
  std::vector<int> selected;
  for (const auto& item : items) {
    const int index = std::atoi(item.c_str());
    if (index < 1 || index > datagen::kNumDatasets) {
      throw std::runtime_error("ERBENCH_DATASETS: bad index " + item);
    }
    selected.push_back(index);
  }
  return selected;
}

std::vector<tuning::MethodId> SelectedMethods() {
  const auto items = EnvList("ERBENCH_METHODS");
  if (items.empty()) return tuning::AllMethods();
  std::vector<tuning::MethodId> selected;
  for (const auto& item : items) {
    bool found = false;
    for (tuning::MethodId id : tuning::AllMethods()) {
      if (item == tuning::MethodName(id)) {
        selected.push_back(id);
        found = true;
        break;
      }
    }
    if (!found) throw std::runtime_error("ERBENCH_METHODS: unknown method " + item);
  }
  return selected;
}

std::vector<Setting> AllSettings() {
  std::vector<Setting> settings;
  for (int index : SelectedDatasets()) {
    settings.push_back({index, core::SchemaMode::kAgnostic});
  }
  for (int index : SelectedDatasets()) {
    if (datagen::HasSchemaBasedSettings(index)) {
      settings.push_back({index, core::SchemaMode::kBased});
    }
  }
  return settings;
}

const core::Dataset& CachedDataset(int index) {
  static std::map<int, core::Dataset> cache;
  auto it = cache.find(index);
  if (it == cache.end()) {
    // Generation shows up in the trace under its own span, clearly separated
    // from any method's timed phases.
    obs::Span span("dataset/generate");
    it = cache.emplace(index, datagen::MakeBenchDataset(index)).first;
  }
  return it->second;
}

const tuning::TunedResult& CachedRun(tuning::MethodId id, const Setting& setting) {
  using Key = std::pair<int, std::pair<int, int>>;
  static std::map<Key, tuning::TunedResult> cache;
  const Key key{static_cast<int>(id),
                {setting.dataset_index, static_cast<int>(setting.mode)}};
  auto it = cache.find(key);
  if (it == cache.end()) {
    const std::string path = CachePath(id, setting);
    tuning::TunedResult result;
    obs::Snapshot stats;
    if (LoadCachedResult(path, &result)) {
      std::fprintf(stderr, "[cache] %-12s %s\n",
                   std::string(tuning::MethodName(id)).c_str(),
                   setting.Label().c_str());
    } else {
      std::fprintf(stderr, "[run] %-12s %s ...\n",
                   std::string(tuning::MethodName(id)).c_str(),
                   setting.Label().c_str());
      // The dataset's first touch (generation) must happen before the run
      // span opens and before any method timer starts: RT is wall-clock
      // between receiving profiles and emitting candidates, excluding data
      // loading (common/timer.hpp).
      const core::Dataset& dataset = CachedDataset(setting.dataset_index);
      const auto counters_before = obs::CounterSnapshot();
      {
        obs::Span span("run/" + std::string(tuning::MethodName(id)) + "/" +
                       setting.Label());
        result = tuning::RunMethod(id, dataset, setting.mode,
                                   tuning::GridOptions::FromEnv());
      }
      stats = obs::Collect();
      for (const auto& [name, before] : counters_before) {
        auto sit = stats.counters.find(name);
        if (sit != stats.counters.end()) sit->second -= before;
      }
      StoreCachedResult(path, result);
    }
    stats.spans.clear();  // JSON records carry scalars; spans go to the trace
    stats.peak_rss_bytes = obs::PeakRssBytes();
    RecordJson(id, setting, result, stats);
    it = cache.emplace(key, std::move(result)).first;
  }
  return it->second;
}

std::string FormatMs(double ms) {
  char buffer[32];
  if (ms >= 1000.0) {
    std::snprintf(buffer, sizeof(buffer), "%.1f s", ms / 1000.0);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.0f ms", ms);
  }
  return buffer;
}

std::string FormatPq(double pq) {
  char buffer[32];
  if (pq != 0.0 && pq < 0.001) {
    std::snprintf(buffer, sizeof(buffer), "%.1e", pq);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.3f", pq);
  }
  return buffer;
}

}  // namespace erb::bench
