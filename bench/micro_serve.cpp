// Self-timed micro-benchmarks of the online resolve path (src/serve):
// insert throughput, single-query resolve latency against a fully sealed
// epoch vs. against a sealed epoch plus a ~1% delta tail, batch resolve,
// and the epoch merge (seal) cost.
//
// Usage: micro_serve [--json=PATH] [--threads=N]
// Prints a table to stdout; --json additionally writes the measurements and
// derived ratios as a JSON document (committed as BENCH_PR7.json). The PR 7
// acceptance headline is `resolve_delta_over_sealed`: delta-tail resolve
// latency divided by sealed-epoch resolve latency at a delta of ~1% of the
// corpus — required to stay within 2.0.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "core/entity.hpp"
#include "datagen/registry.hpp"
#include "serve/resolver.hpp"

namespace {

using namespace erb;

// Median wall time of `reps` timed runs of fn() after `warmup` untimed ones,
// in nanoseconds (micro_kernels' harness: the returned values feed a
// volatile sink to keep the optimizer honest).
volatile double g_sink = 0.0;

template <typename Fn>
double MedianNs(int warmup, int reps, Fn&& fn) {
  for (int i = 0; i < warmup; ++i) g_sink = g_sink + fn();
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const auto start = std::chrono::steady_clock::now();
    g_sink = g_sink + fn();
    const auto stop = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::nano>(stop - start).count());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

struct Measurement {
  std::string name;
  double ns_per_op;
  std::uint64_t ops;
};

std::vector<Measurement> g_measurements;

void Record(const std::string& name, double total_ns, std::uint64_t ops) {
  g_measurements.push_back({name, total_ns / static_cast<double>(ops), ops});
  std::printf("  %-28s %12.2f ns/op   (%llu ops)\n", name.c_str(),
              total_ns / static_cast<double>(ops),
              static_cast<unsigned long long>(ops));
}

double NsPerOp(const std::string& name) {
  for (const auto& m : g_measurements) {
    if (m.name == name) return m.ns_per_op;
  }
  return 0.0;
}

// D4 (DBLP/ACM) at a bench-friendly scale: realistic titles/authors with a
// heavy duplicate share, so resolves actually find matches.
struct ServeFixture {
  std::vector<core::EntityProfile> corpus;
  std::vector<core::EntityProfile> queries;
};

ServeFixture BuildFixture() {
  const core::Dataset dataset = datagen::Generate(datagen::PaperSpec(4));
  ServeFixture fixture;
  fixture.corpus = dataset.e1();
  // 256 queries keeps a timed resolve pass ~milliseconds.
  const std::size_t num_queries = std::min<std::size_t>(256, dataset.e2().size());
  fixture.queries.assign(dataset.e2().begin(),
                         dataset.e2().begin() + num_queries);
  return fixture;
}

serve::Resolver BuildResolver(const ServeFixture& fixture, std::size_t count) {
  serve::ServeConfig config;
  config.threshold = 0.5;
  serve::Resolver resolver(config);
  for (std::size_t i = 0; i < count; ++i) {
    resolver.Insert(std::to_string(i), fixture.corpus[i]);
  }
  return resolver;
}

double ResolvePass(const serve::Resolver& resolver,
                   const std::vector<core::EntityProfile>& queries) {
  double acc = 0.0;
  for (const auto& query : queries) {
    acc += static_cast<double>(resolver.Resolve(query).matches.size());
  }
  return acc;
}

void BenchServe(const ServeFixture& fixture) {
  const std::size_t n = fixture.corpus.size();
  const std::size_t delta = std::max<std::size_t>(1, n / 100);  // ~1%
  const std::size_t sealed_part = n - delta;
  std::printf("serve (corpus=%zu, queries=%zu, delta=%zu):\n", n,
              fixture.queries.size(), delta);

  Record("insert_all", MedianNs(1, 5, [&]() {
           serve::Resolver resolver = BuildResolver(fixture, n);
           return static_cast<double>(resolver.NumEntities());
         }),
         n);

  // Seal cost from the all-delta state: one full compaction over n sets.
  Record("seal_merge", MedianNs(1, 5, [&]() {
           serve::Resolver resolver = BuildResolver(fixture, n);
           return static_cast<double>(resolver.SealEpoch());
         }),
         n);

  // Sealed-epoch resolve: every probe answered by the compacted index.
  serve::Resolver sealed = BuildResolver(fixture, n);
  sealed.SealEpoch();
  Record("resolve_sealed",
         MedianNs(2, 9, [&]() { return ResolvePass(sealed, fixture.queries); }),
         fixture.queries.size());

  // Delta-tail resolve: same corpus, but the last ~1% never sealed — each
  // probe pays the index walk plus the linear delta scan.
  serve::Resolver with_delta = BuildResolver(fixture, sealed_part);
  with_delta.SealEpoch();
  for (std::size_t i = sealed_part; i < n; ++i) {
    with_delta.Insert(std::to_string(i), fixture.corpus[i]);
  }
  Record("resolve_delta1pct",
         MedianNs(2, 9,
                  [&]() { return ResolvePass(with_delta, fixture.queries); }),
         fixture.queries.size());

  Record("resolve_batch", MedianNs(2, 9, [&]() {
           double acc = 0.0;
           for (const auto& result : sealed.ResolveBatch(fixture.queries)) {
             acc += static_cast<double>(result.matches.size());
           }
           return acc;
         }),
         fixture.queries.size());
}

struct Ratio {
  std::string name;
  double value;
};

std::vector<Ratio> ComputeRatios() {
  auto ratio = [](double num, double den) { return den > 0.0 ? num / den : 0.0; };
  return {
      // The acceptance headline: must stay <= 2.0.
      {"resolve_delta_over_sealed",
       ratio(NsPerOp("resolve_delta1pct"), NsPerOp("resolve_sealed"))},
      {"batch_speedup_over_single",
       ratio(NsPerOp("resolve_sealed"), NsPerOp("resolve_batch"))},
  };
}

void WriteJson(const std::string& path, const std::vector<Ratio>& ratios) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "micro_serve: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < g_measurements.size(); ++i) {
    const auto& m = g_measurements[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"ns_per_op\": %.2f, \"ops\": %llu}%s\n",
                 m.name.c_str(), m.ns_per_op,
                 static_cast<unsigned long long>(m.ops),
                 i + 1 < g_measurements.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"ratios\": {\n");
  for (std::size_t i = 0; i < ratios.size(); ++i) {
    std::fprintf(f, "    \"%s\": %.2f%s\n", ratios[i].name.c_str(),
                 ratios[i].value, i + 1 < ratios.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      erb::SetNumThreads(std::strtoull(argv[i] + 10, nullptr, 10));
    } else {
      std::fprintf(stderr, "usage: micro_serve [--json=PATH] [--threads=N]\n");
      return 1;
    }
  }

  const ServeFixture fixture = BuildFixture();
  BenchServe(fixture);

  const auto ratios = ComputeRatios();
  std::printf("ratios:\n");
  for (const auto& r : ratios) {
    std::printf("  %-28s %.2f\n", r.name.c_str(), r.value);
  }
  if (!json_path.empty()) WriteJson(json_path, ratios);
  return 0;
}
