// Reproduces Figures 4, 5 and 6: the distribution of the ranking distance of
// each duplicate pair under syntactic (C5GM + cosine, the DkNN configuration)
// and semantic (300-d subword embeddings + Euclidean) representations, for
// both indexing directions and both schema settings.
//
// x = rank of the true match among the query's candidates (0 = top); the
// paper's plots show syntactic representations concentrating duplicates at
// low ranks — the evidence for conclusion 4.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "datagen/registry.hpp"
#include "densenn/flat_index.hpp"
#include "harness.hpp"
#include "sparsenn/scancount.hpp"

namespace {

using namespace erb;

// Histogram buckets over rank distance: 0, 1, 2-3, 4-7, ..., >=512, missing.
constexpr int kBuckets = 12;

int BucketOf(int rank) {
  if (rank < 0) return kBuckets - 1;  // not retrieved at all
  int bucket = 0;
  int upper = 1;
  while (rank >= upper && bucket < kBuckets - 2) {
    ++bucket;
    upper <<= 1;
  }
  return bucket;
}

const char* BucketLabel(int bucket) {
  static const char* kLabels[kBuckets] = {"0",     "1",       "2-3",   "4-7",
                                          "8-15",  "16-31",   "32-63", "64-127",
                                          "128-255", "256-511", ">=512", "miss"};
  return kLabels[bucket];
}

// Ranks of all duplicates under the syntactic representation (C5GM, cosine).
std::vector<int> SyntacticRanks(const core::Dataset& dataset,
                                core::SchemaMode mode, bool reverse) {
  const int indexed_side = reverse ? 1 : 0;
  const int query_side = reverse ? 0 : 1;
  const auto indexed = sparsenn::BuildSideTokenSets(
      dataset, indexed_side, mode, sparsenn::TokenModel::kC5GM, true);
  const auto queries = sparsenn::BuildSideTokenSets(
      dataset, query_side, mode, sparsenn::TokenModel::kC5GM, true);
  sparsenn::ScanCountIndex index(indexed);

  // match_of[query] = indexed id of the duplicate partner (or -1).
  std::vector<std::int64_t> match_of(queries.size(), -1);
  for (const auto& [id1, id2] : dataset.duplicates()) {
    if (reverse) {
      match_of[id1] = id2;
    } else {
      match_of[id2] = id1;
    }
  }

  std::vector<int> ranks;
  std::vector<std::pair<double, std::uint32_t>> scored;
  for (core::EntityId q = 0; q < queries.size(); ++q) {
    if (match_of[q] < 0) continue;
    scored.clear();
    index.Probe(queries[q], [&](std::uint32_t id, std::uint32_t overlap,
                                std::uint32_t size) {
      scored.emplace_back(
          sparsenn::SetSimilarity(sparsenn::SimilarityMeasure::kCosine, overlap,
                                  queries[q].size(), size),
          id);
    });
    std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
      return a.first != b.first ? a.first > b.first : a.second < b.second;
    });
    int rank = -1;
    for (std::size_t r = 0; r < scored.size(); ++r) {
      if (scored[r].second == static_cast<std::uint32_t>(match_of[q])) {
        rank = static_cast<int>(r);
        break;
      }
    }
    ranks.push_back(rank);
  }
  return ranks;
}

// Ranks under the semantic representation (300-d embeddings, Euclidean).
std::vector<int> SemanticRanks(const core::Dataset& dataset,
                               core::SchemaMode mode, bool reverse) {
  const int indexed_side = reverse ? 1 : 0;
  const int query_side = reverse ? 0 : 1;
  const auto indexed = densenn::EmbedSide(dataset, indexed_side, mode, true);
  const auto queries = densenn::EmbedSide(dataset, query_side, mode, true);
  densenn::FlatIndex index(indexed, densenn::DenseMetric::kSquaredL2);

  std::vector<std::int64_t> match_of(queries.size(), -1);
  for (const auto& [id1, id2] : dataset.duplicates()) {
    if (reverse) {
      match_of[id1] = id2;
    } else {
      match_of[id2] = id1;
    }
  }

  const int k_cap = static_cast<int>(std::min<std::size_t>(indexed.size(), 1024));
  std::vector<int> ranks;
  for (core::EntityId q = 0; q < queries.size(); ++q) {
    if (match_of[q] < 0) continue;
    const auto ids = index.Search(queries[q], k_cap);
    int rank = -1;
    for (std::size_t r = 0; r < ids.size(); ++r) {
      if (ids[r] == static_cast<std::uint32_t>(match_of[q])) {
        rank = static_cast<int>(r);
        break;
      }
    }
    ranks.push_back(rank);
  }
  return ranks;
}

void PrintHistogram(const char* label, const std::vector<int>& ranks) {
  std::vector<int> counts(kBuckets, 0);
  for (int rank : ranks) ++counts[BucketOf(rank)];
  std::printf("  %-10s", label);
  for (int b = 0; b < kBuckets; ++b) std::printf(" %8d", counts[b]);
  std::printf("\n");
}

void RunFigure(const char* title, core::SchemaMode mode, bool reverse) {
  std::printf("=== %s ===\n", title);
  std::printf("  %-10s", "repr");
  for (int b = 0; b < kBuckets; ++b) std::printf(" %8s", BucketLabel(b));
  std::printf("\n");
  for (int index : bench::SelectedDatasets()) {
    if (mode == core::SchemaMode::kBased &&
        !datagen::HasSchemaBasedSettings(index)) {
      continue;
    }
    const auto& dataset = bench::CachedDataset(index);
    std::printf(" %s\n", dataset.name().c_str());
    PrintHistogram("syntactic", SyntacticRanks(dataset, mode, reverse));
    PrintHistogram("semantic", SemanticRanks(dataset, mode, reverse));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  erb::bench::InitBench(argc, argv);
  RunFigure("Figure 4: schema-agnostic, index E1 / query E2",
            core::SchemaMode::kAgnostic, /*reverse=*/false);
  RunFigure("Figure 5: schema-agnostic, index E2 / query E1 (reversed)",
            core::SchemaMode::kAgnostic, /*reverse=*/true);
  RunFigure("Figure 6 (upper): schema-based, index E1 / query E2",
            core::SchemaMode::kBased, /*reverse=*/false);
  RunFigure("Figure 6 (lower): schema-based, index E2 / query E1",
            core::SchemaMode::kBased, /*reverse=*/true);
  return 0;
}
