// google-benchmark micro-benchmarks of the performance-critical components:
// tokenizers, the Porter stemmer, ScanCount probes, MinHash signatures, the
// fast Hadamard rotation path (via CP-LSH key computation), flat kNN search
// and meta-blocking's weighted pass.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>

#include "blocking/builders.hpp"
#include "common/parallel.hpp"
#include "blocking/comparison.hpp"
#include "common/rng.hpp"
#include "core/entity.hpp"
#include "datagen/registry.hpp"
#include "densenn/embedding.hpp"
#include "densenn/flat_index.hpp"
#include "sparsenn/scancount.hpp"
#include "sparsenn/tokenset.hpp"
#include "text/clean.hpp"
#include "text/porter.hpp"

namespace {

using namespace erb;

const core::Dataset& Small() {
  static const core::Dataset dataset =
      datagen::Generate(datagen::PaperSpec(2).Scaled(0.25));
  return dataset;
}

std::string SampleText() {
  return Small().EntityText(0, 3, core::SchemaMode::kAgnostic);
}

void BM_NormalizeAndTokenize(benchmark::State& state) {
  const std::string text = SampleText();
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::CleanTokens(text, false));
  }
}
BENCHMARK(BM_NormalizeAndTokenize);

void BM_CleanTokens(benchmark::State& state) {
  const std::string text = SampleText();
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::CleanTokens(text, true));
  }
}
BENCHMARK(BM_CleanTokens);

void BM_PorterStem(benchmark::State& state) {
  const std::vector<std::string> words = {"filtering",  "entities",
                                          "resolution", "blocking",
                                          "generalization", "happiness"};
  for (auto _ : state) {
    for (const auto& word : words) {
      benchmark::DoNotOptimize(text::PorterStem(word));
    }
  }
}
BENCHMARK(BM_PorterStem);

void BM_ExtractKeys(benchmark::State& state) {
  const std::string text = SampleText();
  blocking::BuilderConfig config;
  config.kind = static_cast<blocking::BuilderKind>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(blocking::ExtractKeys(text, config));
  }
}
BENCHMARK(BM_ExtractKeys)->DenseRange(0, 4);  // all five builders

void BM_BuildTokenSet(benchmark::State& state) {
  const std::string text = SampleText();
  const auto model = static_cast<sparsenn::TokenModel>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparsenn::BuildTokenSet(text, model, false));
  }
}
BENCHMARK(BM_BuildTokenSet)->Arg(0)->Arg(1)->Arg(8)->Arg(9);  // T1G(M), C5G(M)

void BM_ScanCountProbe(benchmark::State& state) {
  const auto& dataset = Small();
  const auto indexed = sparsenn::BuildSideTokenSets(
      dataset, 0, core::SchemaMode::kAgnostic, sparsenn::TokenModel::kC3G, false);
  const auto queries = sparsenn::BuildSideTokenSets(
      dataset, 1, core::SchemaMode::kAgnostic, sparsenn::TokenModel::kC3G, false);
  sparsenn::ScanCountIndex index(indexed);
  std::size_t q = 0;
  for (auto _ : state) {
    std::size_t hits = 0;
    index.Probe(queries[q % queries.size()],
                [&hits](std::uint32_t, std::uint32_t, std::uint32_t) { ++hits; });
    benchmark::DoNotOptimize(hits);
    ++q;
  }
}
BENCHMARK(BM_ScanCountProbe);

void BM_EmbedText(benchmark::State& state) {
  const std::string text = SampleText();
  for (auto _ : state) {
    benchmark::DoNotOptimize(densenn::EmbedText(text));
  }
}
BENCHMARK(BM_EmbedText);

void BM_FlatSearch(benchmark::State& state) {
  const auto& dataset = Small();
  const auto indexed =
      densenn::EmbedSide(dataset, 0, core::SchemaMode::kAgnostic, false);
  const auto queries =
      densenn::EmbedSide(dataset, 1, core::SchemaMode::kAgnostic, false);
  densenn::FlatIndex index(indexed, densenn::DenseMetric::kSquaredL2);
  std::size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index.Search(queries[q % queries.size()], static_cast<int>(state.range(0))));
    ++q;
  }
}
BENCHMARK(BM_FlatSearch)->Arg(1)->Arg(10)->Arg(100);

void BM_BlockBuilding(benchmark::State& state) {
  const auto& dataset = Small();
  blocking::BuilderConfig config;
  config.kind = static_cast<blocking::BuilderKind>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        blocking::BuildBlocks(dataset, core::SchemaMode::kAgnostic, config));
  }
}
BENCHMARK(BM_BlockBuilding)->Arg(0)->Arg(1);

void BM_MetaBlocking(benchmark::State& state) {
  const auto& dataset = Small();
  const auto blocks = blocking::BuildBlocks(dataset, core::SchemaMode::kAgnostic,
                                            blocking::BuilderConfig{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(blocking::MetaBlocking(
        blocks, dataset.e1().size(), dataset.e2().size(),
        blocking::WeightingScheme::kCbs, blocking::PruningAlgorithm::kWnp));
  }
}
BENCHMARK(BM_MetaBlocking);

}  // namespace

// BENCHMARK_MAIN with a --threads=N preamble: the flag sizes the parallel
// runtime's pool and is stripped before google-benchmark sees the arguments.
int main(int argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      erb::SetNumThreads(std::strtoull(argv[i] + 10, nullptr, 10));
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
