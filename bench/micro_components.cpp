// google-benchmark micro-benchmarks of the performance-critical components:
// tokenizers, the Porter stemmer, ScanCount probes, MinHash signatures, the
// fast Hadamard rotation path (via CP-LSH key computation), flat kNN search
// and meta-blocking's weighted pass.
//
// Usage: micro_components [--threads=N] [google-benchmark flags]
//        micro_components --json=PATH [--threads=N]
// The --json mode skips the google-benchmark harness and instead runs the
// self-timed meta-blocking comparison (the pre-CSR graph-backed path,
// reproduced below, against the production CSR kernels), writing the
// measurements and derived speedups as a JSON document (committed as
// BENCH_PR5.json).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "blocking/builders.hpp"
#include "common/parallel.hpp"
#include "blocking/comparison.hpp"
#include "common/rng.hpp"
#include "core/entity.hpp"
#include "datagen/registry.hpp"
#include "densenn/embedding.hpp"
#include "densenn/flat_index.hpp"
#include "sparsenn/scancount.hpp"
#include "sparsenn/tokenset.hpp"
#include "text/clean.hpp"
#include "text/porter.hpp"

namespace {

using namespace erb;

const core::Dataset& Small() {
  static const core::Dataset dataset =
      datagen::Generate(datagen::PaperSpec(2).Scaled(0.25));
  return dataset;
}

std::string SampleText() {
  return Small().EntityText(0, 3, core::SchemaMode::kAgnostic);
}

void BM_NormalizeAndTokenize(benchmark::State& state) {
  const std::string text = SampleText();
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::CleanTokens(text, false));
  }
}
BENCHMARK(BM_NormalizeAndTokenize);

void BM_CleanTokens(benchmark::State& state) {
  const std::string text = SampleText();
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::CleanTokens(text, true));
  }
}
BENCHMARK(BM_CleanTokens);

void BM_PorterStem(benchmark::State& state) {
  const std::vector<std::string> words = {"filtering",  "entities",
                                          "resolution", "blocking",
                                          "generalization", "happiness"};
  for (auto _ : state) {
    for (const auto& word : words) {
      benchmark::DoNotOptimize(text::PorterStem(word));
    }
  }
}
BENCHMARK(BM_PorterStem);

void BM_ExtractKeys(benchmark::State& state) {
  const std::string text = SampleText();
  blocking::BuilderConfig config;
  config.kind = static_cast<blocking::BuilderKind>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(blocking::ExtractKeys(text, config));
  }
}
BENCHMARK(BM_ExtractKeys)->DenseRange(0, 4);  // all five builders

void BM_BuildTokenSet(benchmark::State& state) {
  const std::string text = SampleText();
  const auto model = static_cast<sparsenn::TokenModel>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparsenn::BuildTokenSet(text, model, false));
  }
}
BENCHMARK(BM_BuildTokenSet)->Arg(0)->Arg(1)->Arg(8)->Arg(9);  // T1G(M), C5G(M)

void BM_ScanCountProbe(benchmark::State& state) {
  const auto& dataset = Small();
  const auto indexed = sparsenn::BuildSideTokenSets(
      dataset, 0, core::SchemaMode::kAgnostic, sparsenn::TokenModel::kC3G, false);
  const auto queries = sparsenn::BuildSideTokenSets(
      dataset, 1, core::SchemaMode::kAgnostic, sparsenn::TokenModel::kC3G, false);
  sparsenn::ScanCountIndex index(indexed);
  std::size_t q = 0;
  for (auto _ : state) {
    std::size_t hits = 0;
    index.Probe(queries[q % queries.size()],
                [&hits](std::uint32_t, std::uint32_t, std::uint32_t) { ++hits; });
    benchmark::DoNotOptimize(hits);
    ++q;
  }
}
BENCHMARK(BM_ScanCountProbe);

void BM_EmbedText(benchmark::State& state) {
  const std::string text = SampleText();
  for (auto _ : state) {
    benchmark::DoNotOptimize(densenn::EmbedText(text));
  }
}
BENCHMARK(BM_EmbedText);

void BM_FlatSearch(benchmark::State& state) {
  const auto& dataset = Small();
  const auto indexed =
      densenn::EmbedSide(dataset, 0, core::SchemaMode::kAgnostic, false);
  const auto queries =
      densenn::EmbedSide(dataset, 1, core::SchemaMode::kAgnostic, false);
  densenn::FlatIndex index(indexed, densenn::DenseMetric::kSquaredL2);
  std::size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index.Search(queries[q % queries.size()], static_cast<int>(state.range(0))));
    ++q;
  }
}
BENCHMARK(BM_FlatSearch)->Arg(1)->Arg(10)->Arg(100);

void BM_BlockBuilding(benchmark::State& state) {
  const auto& dataset = Small();
  blocking::BuilderConfig config;
  config.kind = static_cast<blocking::BuilderKind>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        blocking::BuildBlocks(dataset, core::SchemaMode::kAgnostic, config));
  }
}
BENCHMARK(BM_BlockBuilding)->Arg(0)->Arg(1);

void BM_MetaBlocking(benchmark::State& state) {
  const auto& dataset = Small();
  const auto blocks = blocking::BuildBlocks(dataset, core::SchemaMode::kAgnostic,
                                            blocking::BuilderConfig{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(blocking::MetaBlocking(
        blocks, dataset.e1().size(), dataset.e2().size(),
        blocking::WeightingScheme::kCbs, blocking::PruningAlgorithm::kWnp));
  }
}
BENCHMARK(BM_MetaBlocking);

// --- legacy graph-backed meta-blocking, reproduced as the baseline ---------
//
// The pre-CSR implementation, kept verbatim (modulo namespacing): a
// vector-of-vectors entity->block adjacency that chases a pointer per block
// and recomputes 1/||b|| per (entity, block) visit, a per-pair switch
// dispatch of the weighting scheme that re-reads graph statistics and calls
// log/log10 inside the pair loop, and a sorted emission in both passes. The
// self-timed section below measures it against the production CSR kernels.
namespace legacy {

class PairGraph {
 public:
  PairGraph(const blocking::BlockCollection& blocks, std::size_t n1,
            std::size_t n2)
      : blocks_(&blocks), n2_(n2) {
    e1_blocks_.resize(n1);
    e2_block_counts_.assign(n2, 0);
    for (std::uint32_t b = 0; b < blocks.size(); ++b) {
      for (core::EntityId id : blocks[b].e1) e1_blocks_[id].push_back(b);
      for (core::EntityId id : blocks[b].e2) ++e2_block_counts_[id];
    }
  }

  template <typename Fn>
  void ForEachPairInRange(std::size_t i_begin, std::size_t i_end,
                          Fn&& fn) const {
    std::vector<std::uint32_t> common(n2_, 0);
    std::vector<double> arcs(n2_, 0.0);
    std::vector<core::EntityId> touched;
    i_end = std::min(i_end, e1_blocks_.size());
    for (std::size_t i = i_begin; i < i_end; ++i) {
      touched.clear();
      for (std::uint32_t b : e1_blocks_[i]) {
        const blocking::Block& block = (*blocks_)[b];
        const double inv = 1.0 / static_cast<double>(block.Comparisons());
        for (core::EntityId j : block.e2) {
          if (common[j] == 0) touched.push_back(j);
          ++common[j];
          arcs[j] += inv;
        }
      }
      std::sort(touched.begin(), touched.end());
      for (core::EntityId j : touched) {
        fn(static_cast<core::EntityId>(i), j, common[j], arcs[j]);
        common[j] = 0;
        arcs[j] = 0.0;
      }
    }
  }

  template <typename Fn>
  void ForEachPair(Fn&& fn) const {
    ForEachPairInRange(0, e1_blocks_.size(), std::forward<Fn>(fn));
  }

  std::size_t n1() const { return e1_blocks_.size(); }
  std::size_t n2() const { return n2_; }
  std::size_t NumBlocks() const { return blocks_->size(); }
  std::size_t BlocksOf1(core::EntityId i) const { return e1_blocks_[i].size(); }
  std::size_t BlocksOf2(core::EntityId j) const { return e2_block_counts_[j]; }

  void EnsureDegrees() const {
    if (degrees_ready_) return;
    degree1_.assign(e1_blocks_.size(), 0);
    degree2_.assign(n2_, 0);
    total_pairs_ = 0;
    ForEachPair(
        [this](core::EntityId i, core::EntityId j, std::uint32_t, double) {
          ++degree1_[i];
          ++degree2_[j];
          ++total_pairs_;
        });
    degrees_ready_ = true;
  }
  std::uint64_t TotalPairs() const { return total_pairs_; }
  std::uint32_t Degree1(core::EntityId i) const { return degree1_[i]; }
  std::uint32_t Degree2(core::EntityId j) const { return degree2_[j]; }

 private:
  const blocking::BlockCollection* blocks_;
  std::size_t n2_;
  std::vector<std::vector<std::uint32_t>> e1_blocks_;
  std::vector<std::uint32_t> e2_block_counts_;

  mutable bool degrees_ready_ = false;
  mutable std::uint64_t total_pairs_ = 0;
  mutable std::vector<std::uint32_t> degree1_;
  mutable std::vector<std::uint32_t> degree2_;
};

double PairWeight(const PairGraph& graph, blocking::WeightingScheme scheme,
                  core::EntityId i, core::EntityId j, std::uint32_t common,
                  double arcs) {
  const double bi = static_cast<double>(graph.BlocksOf1(i));
  const double bj = static_cast<double>(graph.BlocksOf2(j));
  const double total_blocks =
      std::max<double>(1.0, static_cast<double>(graph.NumBlocks()));
  const double c = static_cast<double>(common);
  switch (scheme) {
    case blocking::WeightingScheme::kArcs:
      return arcs;
    case blocking::WeightingScheme::kCbs:
      return c;
    case blocking::WeightingScheme::kEcbs:
      return c * std::log(total_blocks / bi) * std::log(total_blocks / bj);
    case blocking::WeightingScheme::kJs:
      return c / (bi + bj - c);
    case blocking::WeightingScheme::kEjs: {
      const double js = c / (bi + bj - c);
      const double total_pairs =
          std::max<double>(1.0, static_cast<double>(graph.TotalPairs()));
      const double di = std::max<double>(graph.Degree1(i), 1.0);
      const double dj = std::max<double>(graph.Degree2(j), 1.0);
      return js * std::log10(total_pairs / di) * std::log10(total_pairs / dj);
    }
    case blocking::WeightingScheme::kChiSquared: {
      const double n = total_blocks;
      const double o11 = c;
      const double o12 = bi - c;
      const double o21 = bj - c;
      const double o22 = n - bi - bj + c;
      const double denom = bi * bj * (n - bi) * (n - bj);
      if (denom <= 0.0) return 0.0;
      const double diff = o11 * o22 - o12 * o21;
      return n * diff * diff / denom;
    }
  }
  return 0.0;
}

class TopKTracker {
 public:
  TopKTracker() = default;
  TopKTracker(std::size_t nodes, std::size_t k) : k_(k), heaps_(nodes) {}

  void Offer(std::size_t node, double weight) {
    auto& heap = heaps_[node];
    if (heap.size() < k_) {
      heap.push_back(weight);
      std::push_heap(heap.begin(), heap.end(), std::greater<>());
    } else if (!heap.empty() && weight > heap.front()) {
      std::pop_heap(heap.begin(), heap.end(), std::greater<>());
      heap.back() = weight;
      std::push_heap(heap.begin(), heap.end(), std::greater<>());
    }
  }

  double Threshold(std::size_t node) const {
    const auto& heap = heaps_[node];
    return heap.empty() ? 0.0 : heap.front();
  }

  void MergeFrom(const TopKTracker& other) {
    for (std::size_t node = 0; node < other.heaps_.size(); ++node) {
      for (double weight : other.heaps_[node]) Offer(node, weight);
    }
  }

 private:
  std::size_t k_ = 0;
  std::vector<std::vector<double>> heaps_;
};

struct Side2Stats {
  TopKTracker topk2;
  std::vector<double> sum2, max2;
  std::vector<std::uint32_t> cnt2;
  std::vector<double> all_weights;
  double global_sum = 0.0;
  std::uint64_t global_count = 0;
};

core::CandidateSet ComparisonPropagation(const blocking::BlockCollection& blocks,
                                         std::size_t n1, std::size_t n2) {
  PairGraph graph(blocks, n1, n2);
  core::CandidateSet candidates = ParallelMapReduce<core::CandidateSet>(
      0, n1, /*grain=*/0,
      [&graph](std::size_t i_begin, std::size_t i_end) {
        core::CandidateSet chunk;
        graph.ForEachPairInRange(
            i_begin, i_end,
            [&chunk](core::EntityId i, core::EntityId j, std::uint32_t, double) {
              chunk.Add(i, j);
            });
        return chunk;
      },
      [](core::CandidateSet& into, core::CandidateSet&& from) {
        into.Merge(std::move(from));
      });
  candidates.Finalize();
  return candidates;
}

core::CandidateSet MetaBlocking(const blocking::BlockCollection& blocks,
                                std::size_t n1, std::size_t n2,
                                blocking::WeightingScheme scheme,
                                blocking::PruningAlgorithm pruning) {
  using blocking::PruningAlgorithm;
  PairGraph graph(blocks, n1, n2);
  if (scheme == blocking::WeightingScheme::kEjs) graph.EnsureDegrees();

  const std::uint64_t assignments = blocking::TotalAssignments(blocks);
  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(
             static_cast<double>(assignments) /
             std::max<std::size_t>(1, n1 + n2))));
  const std::uint64_t cep_cap = std::max<std::uint64_t>(1, assignments / 2);

  const bool needs_topk =
      pruning == PruningAlgorithm::kCnp || pruning == PruningAlgorithm::kRcnp;
  const bool needs_node_stats = pruning == PruningAlgorithm::kWnp ||
                                pruning == PruningAlgorithm::kRwnp ||
                                pruning == PruningAlgorithm::kBlast;
  const bool needs_global_weights = pruning == PruningAlgorithm::kCep;
  const bool needs_global_avg = pruning == PruningAlgorithm::kWep;

  TopKTracker topk1(needs_topk ? n1 : 0, k);
  std::vector<double> sum1, max1;
  std::vector<std::uint32_t> cnt1;
  if (needs_node_stats) {
    sum1.assign(n1, 0.0);
    max1.assign(n1, 0.0);
    cnt1.assign(n1, 0);
  }

  constexpr std::size_t kStatsChunks = 16;
  const std::size_t stats_grain =
      std::max<std::size_t>(1, (n1 + kStatsChunks - 1) / kStatsChunks);
  Side2Stats stats = ParallelMapReduce<Side2Stats>(
      0, n1, stats_grain,
      [&](std::size_t i_begin, std::size_t i_end) {
        Side2Stats chunk;
        if (needs_topk) chunk.topk2 = TopKTracker(n2, k);
        if (needs_node_stats) {
          chunk.sum2.assign(n2, 0.0);
          chunk.max2.assign(n2, 0.0);
          chunk.cnt2.assign(n2, 0);
        }
        graph.ForEachPairInRange(
            i_begin, i_end,
            [&](core::EntityId i, core::EntityId j, std::uint32_t common,
                double arcs) {
              const double w = PairWeight(graph, scheme, i, j, common, arcs);
              if (needs_topk) {
                topk1.Offer(i, w);
                chunk.topk2.Offer(j, w);
              }
              if (needs_node_stats) {
                sum1[i] += w;
                ++cnt1[i];
                max1[i] = std::max(max1[i], w);
                chunk.sum2[j] += w;
                ++chunk.cnt2[j];
                chunk.max2[j] = std::max(chunk.max2[j], w);
              }
              if (needs_global_weights) chunk.all_weights.push_back(w);
              if (needs_global_avg) {
                chunk.global_sum += w;
                ++chunk.global_count;
              }
            });
        return chunk;
      },
      [&](Side2Stats& into, Side2Stats&& from) {
        if (needs_topk) into.topk2.MergeFrom(from.topk2);
        if (needs_node_stats) {
          for (std::size_t j = 0; j < n2; ++j) {
            into.sum2[j] += from.sum2[j];
            into.cnt2[j] += from.cnt2[j];
            into.max2[j] = std::max(into.max2[j], from.max2[j]);
          }
        }
        if (needs_global_weights) {
          into.all_weights.insert(into.all_weights.end(),
                                  from.all_weights.begin(),
                                  from.all_weights.end());
        }
        into.global_sum += from.global_sum;
        into.global_count += from.global_count;
      });
  const TopKTracker& topk2 = stats.topk2;
  const std::vector<double>& sum2 = stats.sum2;
  const std::vector<double>& max2 = stats.max2;
  const std::vector<std::uint32_t>& cnt2 = stats.cnt2;
  std::vector<double>& all_weights = stats.all_weights;
  const double global_sum = stats.global_sum;
  const std::uint64_t global_count = stats.global_count;

  double cep_threshold = 0.0;
  if (needs_global_weights) {
    if (all_weights.size() > cep_cap) {
      std::nth_element(all_weights.begin(), all_weights.begin() + cep_cap - 1,
                       all_weights.end(), std::greater<>());
      cep_threshold = all_weights[cep_cap - 1];
    }
    all_weights.clear();
    all_weights.shrink_to_fit();
  }
  const double global_avg =
      global_count == 0 ? 0.0 : global_sum / static_cast<double>(global_count);

  constexpr double kBlastRatio = 0.35;

  core::CandidateSet candidates = ParallelMapReduce<core::CandidateSet>(
      0, n1, /*grain=*/0,
      [&](std::size_t i_begin, std::size_t i_end) {
        core::CandidateSet chunk;
        graph.ForEachPairInRange(
            i_begin, i_end,
            [&](core::EntityId i, core::EntityId j, std::uint32_t common,
                double arcs) {
              const double w = PairWeight(graph, scheme, i, j, common, arcs);
              bool keep = false;
              switch (pruning) {
                case PruningAlgorithm::kBlast:
                  keep = w >= kBlastRatio * (max1[i] + max2[j]);
                  break;
                case PruningAlgorithm::kCep:
                  keep = w >= cep_threshold;
                  break;
                case PruningAlgorithm::kCnp:
                  keep = w >= topk1.Threshold(i) || w >= topk2.Threshold(j);
                  break;
                case PruningAlgorithm::kRcnp:
                  keep = w >= topk1.Threshold(i) && w >= topk2.Threshold(j);
                  break;
                case PruningAlgorithm::kWep:
                  keep = w >= global_avg;
                  break;
                case PruningAlgorithm::kWnp:
                  keep = (cnt1[i] > 0 && w >= sum1[i] / cnt1[i]) ||
                         (cnt2[j] > 0 && w >= sum2[j] / cnt2[j]);
                  break;
                case PruningAlgorithm::kRwnp:
                  keep = (cnt1[i] > 0 && w >= sum1[i] / cnt1[i]) &&
                         (cnt2[j] > 0 && w >= sum2[j] / cnt2[j]);
                  break;
              }
              if (keep) chunk.Add(i, j);
            });
        return chunk;
      },
      [](core::CandidateSet& into, core::CandidateSet&& from) {
        into.Merge(std::move(from));
      });
  candidates.Finalize();
  return candidates;
}

// Pre-flat-dict block building: one std::string per entity text, owned key
// strings from the allocating ExtractKeys, and a node-based unordered_map
// from key to block id — the exact shape the flat StringDict build replaced.
blocking::BlockCollection BuildBlocks(const core::Dataset& dataset,
                                      core::SchemaMode mode,
                                      const blocking::BuilderConfig& config) {
  blocking::BlockCollection blocks;
  std::unordered_map<std::string, std::uint32_t> key_to_block;
  for (int side = 0; side < 2; ++side) {
    const std::size_t count = (side == 0 ? dataset.e1() : dataset.e2()).size();
    for (core::EntityId id = 0; id < count; ++id) {
      const std::string text = dataset.EntityText(side, id, mode);
      for (std::string& key : blocking::ExtractKeys(text, config)) {
        const auto [it, inserted] = key_to_block.try_emplace(
            std::move(key), static_cast<std::uint32_t>(blocks.size()));
        if (inserted) blocks.emplace_back();
        blocking::Block& block = blocks[it->second];
        (side == 0 ? block.e1 : block.e2).push_back(id);
      }
    }
  }
  blocking::DropUselessBlocks(&blocks);
  return blocks;
}

}  // namespace legacy

// --- self-timed comparison (--json mode) -----------------------------------

volatile double g_sink = 0.0;

template <typename Fn>
double MedianNs(int warmup, int reps, Fn&& fn) {
  for (int i = 0; i < warmup; ++i) g_sink = g_sink + fn();
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const auto start = std::chrono::steady_clock::now();
    g_sink = g_sink + fn();
    const auto stop = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::nano>(stop - start).count());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

struct Measurement {
  std::string name;
  double ns_per_op;
  std::uint64_t ops;
};

std::vector<Measurement> g_measurements;

void Record(const std::string& name, double total_ns, std::uint64_t ops) {
  g_measurements.push_back({name, total_ns / static_cast<double>(ops), ops});
  std::printf("  %-24s %14.2f ns/op   (%llu ops)\n", name.c_str(),
              total_ns / static_cast<double>(ops),
              static_cast<unsigned long long>(ops));
}

double NsPerOp(const std::string& name) {
  for (const auto& m : g_measurements) {
    if (m.name == name) return m.ns_per_op;
  }
  return 0.0;
}

struct Speedup {
  std::string name;
  double factor;
};

void WriteJson(const std::string& path, const std::vector<Speedup>& speedups) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "micro_components: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < g_measurements.size(); ++i) {
    const auto& m = g_measurements[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"ns_per_op\": %.2f, \"ops\": %llu}%s\n",
                 m.name.c_str(), m.ns_per_op,
                 static_cast<unsigned long long>(m.ops),
                 i + 1 < g_measurements.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"speedups\": {\n");
  for (std::size_t i = 0; i < speedups.size(); ++i) {
    std::fprintf(f, "    \"%s\": %.2f%s\n", speedups[i].name.c_str(),
                 speedups[i].factor, i + 1 < speedups.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

// Measures legacy (graph-backed) vs production (CSR) meta-blocking over a
// representative scheme x pruning sample — every weighting scheme appears
// once, every statistic family of pruning (node average, top-k, global
// threshold, local max) is exercised — plus Comparison Propagation. Both
// sides run the identical pass structure and produce byte-identical
// candidates (asserted), so each ratio isolates the data-layout and
// dispatch work.
int RunSelfTimed(const std::string& json_path) {
  // Full mid-size paper dataset (unlike the scaled-down google-benchmark
  // fixture): realistic block-per-entity and neighborhood sizes, so the
  // timings are dominated by the streamed pair loop the PR rewrote.
  const core::Dataset dataset = datagen::Generate(datagen::PaperSpec(2));
  const auto blocks = blocking::BuildBlocks(dataset, core::SchemaMode::kAgnostic,
                                            blocking::BuilderConfig{});
  const std::size_t n1 = dataset.e1().size();
  const std::size_t n2 = dataset.e2().size();
  std::uint64_t total_pairs = 0;
  {
    const auto all = blocking::ComparisonPropagation(blocks, n1, n2);
    total_pairs = all.pairs().size();
  }
  std::printf("meta-blocking (%zu blocks, %zu x %zu entities, %llu pairs):\n",
              blocks.size(), n1, n2,
              static_cast<unsigned long long>(total_pairs));

  // Block building itself: the pre-flat-dict unordered_map build against the
  // production streamed StringDict build, over the same dataset. Collections
  // must match block-for-block (same key first-appearance order, same member
  // order) before the timings mean anything.
  {
    const auto old = legacy::BuildBlocks(dataset, core::SchemaMode::kAgnostic,
                                         blocking::BuilderConfig{});
    bool same = old.size() == blocks.size();
    for (std::size_t b = 0; same && b < old.size(); ++b) {
      same = old[b].e1 == blocks[b].e1 && old[b].e2 == blocks[b].e2;
    }
    if (!same) {
      std::fprintf(stderr, "micro_components: block collections diverge\n");
      return 1;
    }
  }
  const std::uint64_t num_entities = static_cast<std::uint64_t>(n1 + n2);
  Record("legacy_block_build", MedianNs(1, 5, [&]() {
           return static_cast<double>(
               legacy::BuildBlocks(dataset, core::SchemaMode::kAgnostic,
                                   blocking::BuilderConfig{})
                   .size());
         }),
         num_entities);
  Record("flat_block_build", MedianNs(1, 5, [&]() {
           return static_cast<double>(
               blocking::BuildBlocks(dataset, core::SchemaMode::kAgnostic,
                                     blocking::BuilderConfig{})
                   .size());
         }),
         num_entities);

  const struct {
    blocking::WeightingScheme scheme;
    blocking::PruningAlgorithm pruning;
  } kCells[] = {
      {blocking::WeightingScheme::kCbs, blocking::PruningAlgorithm::kWnp},
      {blocking::WeightingScheme::kArcs, blocking::PruningAlgorithm::kBlast},
      {blocking::WeightingScheme::kEcbs, blocking::PruningAlgorithm::kCnp},
      {blocking::WeightingScheme::kJs, blocking::PruningAlgorithm::kWep},
      {blocking::WeightingScheme::kEjs, blocking::PruningAlgorithm::kRcnp},
      {blocking::WeightingScheme::kChiSquared, blocking::PruningAlgorithm::kCep},
  };

  std::vector<Speedup> speedups;
  speedups.push_back({"block_build", NsPerOp("legacy_block_build") /
                                         NsPerOp("flat_block_build")});
  char name[64];
  for (const auto& cell : kCells) {
    const std::string tag = std::string(blocking::SchemeName(cell.scheme)) +
                            "_" + std::string(blocking::PruningName(cell.pruning));
    const auto expect =
        legacy::MetaBlocking(blocks, n1, n2, cell.scheme, cell.pruning);
    const auto got =
        blocking::MetaBlocking(blocks, n1, n2, cell.scheme, cell.pruning);
    if (expect.pairs() != got.pairs()) {
      std::fprintf(stderr, "micro_components: %s candidates diverge\n",
                   tag.c_str());
      return 1;
    }
    std::snprintf(name, sizeof(name), "legacy_%s", tag.c_str());
    Record(name, MedianNs(1, 5, [&]() {
             return static_cast<double>(
                 legacy::MetaBlocking(blocks, n1, n2, cell.scheme, cell.pruning)
                     .pairs()
                     .size());
           }),
           total_pairs);
    std::snprintf(name, sizeof(name), "csr_%s", tag.c_str());
    Record(name, MedianNs(1, 5, [&]() {
             return static_cast<double>(
                 blocking::MetaBlocking(blocks, n1, n2, cell.scheme,
                                        cell.pruning)
                     .pairs()
                     .size());
           }),
           total_pairs);
    speedups.push_back({"metablocking_" + tag,
                        NsPerOp("legacy_" + tag) / NsPerOp("csr_" + tag)});
  }

  Record("legacy_CP", MedianNs(1, 5, [&]() {
           return static_cast<double>(
               legacy::ComparisonPropagation(blocks, n1, n2).pairs().size());
         }),
         total_pairs);
  Record("csr_CP", MedianNs(1, 5, [&]() {
           return static_cast<double>(
               blocking::ComparisonPropagation(blocks, n1, n2).pairs().size());
         }),
         total_pairs);
  speedups.push_back({"cp", NsPerOp("legacy_CP") / NsPerOp("csr_CP")});

  double log_sum = 0.0;
  std::size_t mb_cells = 0;
  for (const auto& s : speedups) {
    if (s.name.rfind("metablocking_", 0) == 0) {
      log_sum += std::log(s.factor);
      ++mb_cells;
    }
  }
  speedups.push_back({"metablocking_geomean",
                      std::exp(log_sum / static_cast<double>(mb_cells))});

  std::printf("speedups (legacy / csr):\n");
  for (const auto& s : speedups) {
    std::printf("  %-26s %.2fx\n", s.name.c_str(), s.factor);
  }
  if (!json_path.empty()) WriteJson(json_path, speedups);
  return 0;
}

}  // namespace

// BENCHMARK_MAIN with a --threads=N preamble (the flag sizes the parallel
// runtime's pool and is stripped before google-benchmark sees the arguments)
// and a --json=PATH mode that runs the self-timed legacy-vs-CSR meta-blocking
// comparison instead of the google-benchmark harness.
int main(int argc, char** argv) {
  std::string json_path;
  bool self_timed = false;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      erb::SetNumThreads(std::strtoull(argv[i] + 10, nullptr, 10));
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
      self_timed = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  if (self_timed) return RunSelfTimed(json_path);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
