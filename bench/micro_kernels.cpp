// Self-timed micro-benchmarks of the repo's hot-path kernels: SIMD dot /
// squared-L2 / axpy against the pinned scalar backend, the length-filtered
// ScanCount probe against the unfiltered and legacy nested-list ones, the
// prefix/positional-filtered probe against the length-filtered baseline
// (all running the full ε-Join scoring pipeline on identical inputs), a
// kNN-style decreasing-threshold probe pair, and the CSR index builds.
//
// Usage: micro_kernels [--json=PATH] [--threads=N]
// Prints a table to stdout; --json additionally writes the measurements and
// derived speedups as a JSON document (committed as BENCH_PR4.json for the
// layout/length-filter work, BENCH_PR6.json for the prefix-filter work with
// the `probe_prefix_geomean` headline, and BENCH_PR8.json for the build-path
// substrate work with the `build_geomean` headline and the forked peak-RSS
// section).
#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "blocking/builders.hpp"
#include "common/hash.hpp"
#include "common/strings.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "core/entity.hpp"
#include "datagen/registry.hpp"
#include "sparsenn/joins.hpp"
#include "sparsenn/scancount.hpp"
#include "sparsenn/tokenset.hpp"
#include "text/clean.hpp"

namespace {

using namespace erb;

// Median wall time of `reps` timed runs of fn() after `warmup` untimed ones,
// in nanoseconds. fn must return a value that depends on all its work; the
// returned values are accumulated into a volatile sink to keep the optimizer
// honest.
volatile double g_sink = 0.0;

template <typename Fn>
double MedianNs(int warmup, int reps, Fn&& fn) {
  for (int i = 0; i < warmup; ++i) g_sink = g_sink + fn();
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const auto start = std::chrono::steady_clock::now();
    g_sink = g_sink + fn();
    const auto stop = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::nano>(stop - start).count());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

struct Measurement {
  std::string name;
  double ns_per_op;
  std::uint64_t ops;
};

std::vector<Measurement> g_measurements;

void Record(const std::string& name, double total_ns, std::uint64_t ops) {
  g_measurements.push_back({name, total_ns / static_cast<double>(ops), ops});
  std::printf("  %-28s %12.2f ns/op   (%llu ops)\n", name.c_str(),
              total_ns / static_cast<double>(ops),
              static_cast<unsigned long long>(ops));
}

// --- dense kernels ---------------------------------------------------------

constexpr std::size_t kDim = 300;
constexpr std::size_t kPairs = 4096;

std::vector<float> RandomFloats(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> out(n);
  for (float& x : out) x = static_cast<float>(rng.NextDouble(-1.0, 1.0));
  return out;
}

void BenchDenseKernels() {
  const std::vector<float> a = RandomFloats(kPairs * kDim, 1);
  const std::vector<float> b = RandomFloats(kPairs * kDim, 2);
  std::vector<float> y = RandomFloats(kDim, 3);

  auto sweep = [&](auto&& kernel) {
    return [&, kernel]() {
      float acc = 0.0f;
      for (std::size_t p = 0; p < kPairs; ++p) {
        acc += kernel(a.data() + p * kDim, b.data() + p * kDim, kDim);
      }
      return static_cast<double>(acc);
    };
  };

  std::printf("dense kernels (dim=%zu, %zu pairs, backend=%s):\n", kDim, kPairs,
              std::string(simd::KindName(simd::ActiveKind())).c_str());
  Record("dot_scalar",
         MedianNs(3, 9, sweep([](const float* x, const float* z, std::size_t n) {
           return simd::DotScalar(x, z, n);
         })),
         kPairs);
  Record("dot_dispatch",
         MedianNs(3, 9, sweep([](const float* x, const float* z, std::size_t n) {
           return simd::Dot(x, z, n);
         })),
         kPairs);
  Record("l2_scalar",
         MedianNs(3, 9, sweep([](const float* x, const float* z, std::size_t n) {
           return simd::SquaredL2Scalar(x, z, n);
         })),
         kPairs);
  Record("l2_dispatch",
         MedianNs(3, 9, sweep([](const float* x, const float* z, std::size_t n) {
           return simd::SquaredL2(x, z, n);
         })),
         kPairs);
  Record("axpy_scalar", MedianNs(3, 9, [&]() {
           for (std::size_t p = 0; p < kPairs; ++p) {
             simd::AxpyScalar(0.001f, a.data() + p * kDim, y.data(), kDim);
           }
           return static_cast<double>(y[0]);
         }),
         kPairs);
  Record("axpy_dispatch", MedianNs(3, 9, [&]() {
           for (std::size_t p = 0; p < kPairs; ++p) {
             simd::Axpy(0.001f, a.data() + p * kDim, y.data(), kDim);
           }
           return static_cast<double>(y[0]);
         }),
         kPairs);
}

// --- sparse probes ---------------------------------------------------------

// The pre-PR ScanCountIndex, reproduced verbatim as the probe baseline: one
// heap-allocated posting vector per token (walks chase a pointer per list),
// a hash table sized from total token occurrences, and a branchy merge-count
// loop. The probe speedups below measure the PR's layout + filter work
// against this.
class LegacyScanCountIndex {
 public:
  explicit LegacyScanCountIndex(const std::vector<sparsenn::TokenSet>& sets) {
    std::size_t total_tokens = 0;
    set_sizes_.reserve(sets.size());
    for (const auto& set : sets) {
      set_sizes_.push_back(static_cast<std::uint32_t>(set.size()));
      total_tokens += set.size();
    }
    const std::size_t capacity =
        std::bit_ceil(std::max<std::size_t>(16, total_tokens * 2));
    slots_.resize(capacity);
    const std::size_t mask = capacity - 1;
    for (std::uint32_t id = 0; id < sets.size(); ++id) {
      for (std::uint64_t token : sets[id]) {
        std::size_t pos = SplitMix64(token) & mask;
        while (slots_[pos].used && slots_[pos].token != token) {
          pos = (pos + 1) & mask;
        }
        if (!slots_[pos].used) {
          slots_[pos].used = true;
          slots_[pos].token = token;
          slots_[pos].list_index =
              static_cast<std::uint32_t>(posting_lists_.size());
          posting_lists_.emplace_back();
        }
        posting_lists_[slots_[pos].list_index].push_back(id);
      }
    }
  }

  template <typename Fn>
  void Probe(const sparsenn::TokenSet& query, std::vector<std::uint32_t>* counts,
             std::vector<std::uint32_t>* touched, Fn&& fn) const {
    counts->resize(set_sizes_.size(), 0);
    touched->clear();
    for (std::uint64_t token : query) {
      const auto* list = PostingList(token);
      if (list == nullptr) continue;
      for (std::uint32_t id : *list) {
        if ((*counts)[id] == 0) touched->push_back(id);
        ++(*counts)[id];
      }
    }
    for (std::uint32_t id : *touched) {
      fn(id, (*counts)[id], set_sizes_[id]);
      (*counts)[id] = 0;
    }
  }

 private:
  struct Slot {
    std::uint64_t token = 0;
    std::uint32_t list_index = 0;
    bool used = false;
  };
  const std::vector<std::uint32_t>* PostingList(std::uint64_t token) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t pos = SplitMix64(token) & mask;
    while (slots_[pos].used) {
      if (slots_[pos].token == token) {
        return &posting_lists_[slots_[pos].list_index];
      }
      pos = (pos + 1) & mask;
    }
    return nullptr;
  }
  std::vector<Slot> slots_;
  std::vector<std::vector<std::uint32_t>> posting_lists_;
  std::vector<std::uint32_t> set_sizes_;
};

struct SparseFixture {
  std::vector<sparsenn::TokenSet> indexed;
  std::vector<sparsenn::TokenSet> queries;
};

SparseFixture BuildSparseFixture(const core::Dataset& dataset) {
  // A mid-size paper dataset tokenized the way the tuned ε-Join runs it
  // (cleaning on, character 3-gram multisets): realistic list lengths and a
  // wide spread of set sizes for the length filter to cut.
  SparseFixture fixture;
  fixture.indexed = sparsenn::BuildSideTokenSets(
      dataset, 0, core::SchemaMode::kAgnostic, sparsenn::TokenModel::kC3GM,
      /*clean=*/true);
  fixture.queries = sparsenn::BuildSideTokenSets(
      dataset, 1, core::SchemaMode::kAgnostic, sparsenn::TokenModel::kC3GM,
      /*clean=*/true);
  return fixture;
}

// One full ε-Join query pass over every query set: probe, score, threshold.
// Returns the candidate count so the work cannot be optimized away.
double EpsilonPassLegacy(const LegacyScanCountIndex& index,
                         const std::vector<sparsenn::TokenSet>& queries,
                         double threshold,
                         sparsenn::ScanCountIndex::ProbeScratch* scratch) {
  std::uint64_t kept = 0;
  for (const auto& query : queries) {
    index.Probe(query, &scratch->counts, &scratch->touched,
                [&](std::uint32_t, std::uint32_t overlap, std::uint32_t size) {
                  const double sim = sparsenn::SetSimilarity(
                      sparsenn::SimilarityMeasure::kCosine, overlap,
                      query.size(), size);
                  if (sim >= threshold) ++kept;
                });
  }
  return static_cast<double>(kept);
}

double EpsilonPassUnfiltered(const sparsenn::ScanCountIndex& index,
                             const std::vector<sparsenn::TokenSet>& queries,
                             double threshold,
                             sparsenn::ScanCountIndex::ProbeScratch* scratch) {
  std::uint64_t kept = 0;
  for (const auto& query : queries) {
    index.Probe(query, scratch,
                [&](std::uint32_t, std::uint32_t overlap, std::uint32_t size) {
                  const double sim = sparsenn::SetSimilarity(
                      sparsenn::SimilarityMeasure::kCosine, overlap,
                      query.size(), size);
                  if (sim >= threshold) ++kept;
                });
  }
  return static_cast<double>(kept);
}

double EpsilonPassFiltered(const sparsenn::ScanCountIndex& index,
                           const std::vector<sparsenn::TokenSet>& queries,
                           sparsenn::SimilarityMeasure measure,
                           double threshold,
                           sparsenn::ScanCountIndex::ProbeScratch* scratch) {
  std::uint64_t kept = 0;
  for (const auto& query : queries) {
    const auto filter =
        sparsenn::LengthBounds(measure, threshold, query.size());
    index.ProbeFiltered(
        query, filter, scratch,
        [&](std::uint32_t, std::uint32_t overlap, std::uint32_t size) {
          const double sim = sparsenn::SetSimilarity(measure, overlap,
                                                     query.size(), size);
          if (sim >= threshold) ++kept;
        });
  }
  return static_cast<double>(kept);
}

// The prefix-filtered ε-Join pass: same queries, same scoring pipeline, same
// surviving candidates as the length-filtered pass — only the probe changes.
// Queries are pre-remapped into rank space, mirroring the production join
// (RunPrefixJoin remaps once during the index phase, not per probe).
double EpsilonPassPrefix(
    const sparsenn::PrefixScanCountIndex& index,
    const std::vector<sparsenn::RankedTokenSet>& queries,
    sparsenn::SimilarityMeasure measure, double threshold,
    sparsenn::PrefixScanCountIndex::ProbeScratch* scratch) {
  std::uint64_t kept = 0;
  for (const auto& query : queries) {
    index.Probe(query, threshold, scratch,
                [&](std::uint32_t, std::uint32_t overlap, std::uint32_t size) {
                  const double sim = sparsenn::SetSimilarity(
                      measure, overlap, query.size(), size);
                  if (sim >= threshold) ++kept;
                });
  }
  return static_cast<double>(kept);
}

// Per-query tracker of the k highest distinct similarity values (the kNN
// collector's threshold state, without the id bookkeeping).
struct TopValues {
  std::vector<double> values;
  std::size_t k;
  double tau() const { return values.size() == k ? values.back() : 0.0; }
  void Offer(double sim) {
    auto it = std::lower_bound(values.begin(), values.end(), sim,
                               std::greater<double>());
    if (it != values.end() && *it == sim) return;
    if (values.size() == k) {
      if (sim <= values.back()) return;
      values.pop_back();
      it = std::lower_bound(values.begin(), values.end(), sim,
                            std::greater<double>());
    }
    values.insert(it, sim);
  }
};

// kNN-style pass over the unfiltered merge-count: probe everything, offer
// every similarity. Returns the sum of the final top values — identical for
// both probe variants, so the comparison is self-checking on the sink.
double KnnPassUnfiltered(const sparsenn::ScanCountIndex& index,
                         const std::vector<sparsenn::TokenSet>& queries,
                         std::size_t k,
                         sparsenn::ScanCountIndex::ProbeScratch* scratch) {
  double acc = 0.0;
  for (const auto& query : queries) {
    TopValues top{{}, k};
    index.Probe(query, scratch,
                [&](std::uint32_t, std::uint32_t overlap, std::uint32_t size) {
                  top.Offer(sparsenn::SetSimilarity(
                      sparsenn::SimilarityMeasure::kCosine, overlap,
                      query.size(), size));
                });
    for (double v : top.values) acc += v;
  }
  return acc;
}

// The same pass through the prefix index's decreasing-threshold probe: the
// admissible prefix and filter bounds tighten as the running k-th value rises.
double KnnPassPrefix(const sparsenn::PrefixScanCountIndex& index,
                     const std::vector<sparsenn::RankedTokenSet>& queries,
                     std::size_t k,
                     sparsenn::PrefixScanCountIndex::ProbeScratch* scratch) {
  double acc = 0.0;
  for (const auto& query : queries) {
    TopValues top{{}, k};
    index.ProbeDecreasing(
        query, [&top] { return top.tau(); }, scratch,
        [&](std::uint32_t, std::uint32_t overlap, std::uint32_t size) {
          const double sim = sparsenn::SetSimilarity(
              sparsenn::SimilarityMeasure::kCosine, overlap, query.size(),
              size);
          if (sim < top.tau()) return;
          top.Offer(sim);
        });
    for (double v : top.values) acc += v;
  }
  return acc;
}

void BenchSparseProbes(const SparseFixture& fixture) {
  const LegacyScanCountIndex legacy(fixture.indexed);
  const sparsenn::ScanCountIndex index(fixture.indexed);
  sparsenn::ScanCountIndex::ProbeScratch scratch;
  sparsenn::PrefixScanCountIndex::ProbeScratch prefix_scratch;
  std::printf("scancount probes (%zu indexed, %zu queries, %zu tokens):\n",
              fixture.indexed.size(), fixture.queries.size(),
              index.NumTokens());
  // Legacy/unfiltered reference cells (PR 4 parity), Cosine only.
  for (double threshold : {0.5, 0.7}) {
    char name[64];
    std::snprintf(name, sizeof(name), "probe_legacy_t%.1f", threshold);
    Record(name, MedianNs(2, 7, [&]() {
             return EpsilonPassLegacy(legacy, fixture.queries, threshold,
                                      &scratch);
           }),
           fixture.queries.size());
    std::snprintf(name, sizeof(name), "probe_unfiltered_t%.1f", threshold);
    Record(name, MedianNs(2, 7, [&]() {
             return EpsilonPassUnfiltered(index, fixture.queries, threshold,
                                          &scratch);
           }),
           fixture.queries.size());
  }

  // Length-filtered vs prefix-filtered ε-Join cells over both measures and
  // the full threshold spread. Both sides of each cell see identical inputs
  // and an identical scoring pipeline; the spread deliberately includes the
  // low thresholds where the paper expects prefix filtering to degrade
  // (Cosine's t² bound keeps three quarters of each set in the prefix at
  // t = 0.5) as well as the high-threshold regime it is built for.
  for (auto measure : {sparsenn::SimilarityMeasure::kCosine,
                       sparsenn::SimilarityMeasure::kJaccard}) {
    const bool cosine = measure == sparsenn::SimilarityMeasure::kCosine;
    for (double threshold : {0.5, 0.7, 0.9}) {
      const sparsenn::PrefixScanCountIndex prefix_index(fixture.indexed,
                                                        measure, threshold);
      std::vector<sparsenn::RankedTokenSet> ranked;
      ranked.reserve(fixture.queries.size());
      for (const auto& query : fixture.queries) {
        ranked.push_back(prefix_index.ranks().Remap(query));
      }
      char name[64];
      std::snprintf(name, sizeof(name), "probe_filtered%s_t%.1f",
                    cosine ? "" : "_jac", threshold);
      Record(name, MedianNs(2, 7, [&]() {
               return EpsilonPassFiltered(index, fixture.queries, measure,
                                          threshold, &scratch);
             }),
             fixture.queries.size());
      std::snprintf(name, sizeof(name), "probe_prefix%s_t%.1f",
                    cosine ? "" : "_jac", threshold);
      Record(name, MedianNs(2, 7, [&]() {
               return EpsilonPassPrefix(prefix_index, ranked, measure,
                                        threshold, &prefix_scratch);
             }),
             fixture.queries.size());
    }
  }

  // kNN-style decreasing-threshold pair: both track the k = 10 highest
  // distinct values per query; the prefix index is built at 0 (full
  // positional postings), exactly as KnnJoin builds it.
  const sparsenn::PrefixScanCountIndex knn_index(
      fixture.indexed, sparsenn::SimilarityMeasure::kCosine, 0.0);
  std::vector<sparsenn::RankedTokenSet> ranked;
  ranked.reserve(fixture.queries.size());
  for (const auto& query : fixture.queries) {
    ranked.push_back(knn_index.ranks().Remap(query));
  }
  Record("knn_probe_unfiltered_k10", MedianNs(2, 7, [&]() {
           return KnnPassUnfiltered(index, fixture.queries, 10, &scratch);
         }),
         fixture.queries.size());
  Record("knn_probe_prefix_k10", MedianNs(2, 7, [&]() {
           return KnnPassPrefix(knn_index, ranked, 10, &prefix_scratch);
         }),
         fixture.queries.size());
}

// --- build-path baselines (PR 8) -------------------------------------------
// The pre-PR build substrate, reproduced verbatim as in-bench baselines: one
// std::string materialized per entity text, std::unordered_map occurrence /
// frequency / key tables (a heap node per distinct key), and the sequential
// single-chunk pass structure. The build_* speedups below measure the flat
// open-addressing dictionaries + columnar ProfileStore against this.

sparsenn::TokenSet LegacyBuildTokenSet(std::string_view text,
                                       sparsenn::TokenModel model, bool clean) {
  const std::string cleaned = text::CleanText(text, clean);
  std::vector<std::uint64_t> raw;
  const int n = sparsenn::ModelGramLength(model);
  if (n == 0) {
    for (const auto& token : text::CleanTokens(cleaned, /*clean=*/false)) {
      raw.push_back(FnvHash64(token));
    }
  } else {
    if (static_cast<int>(cleaned.size()) < n) {
      if (!cleaned.empty()) raw.push_back(FnvHash64(cleaned));
    } else {
      raw.reserve(cleaned.size());
      for (std::size_t i = 0; i + n <= cleaned.size(); ++i) {
        raw.push_back(FnvHash64(std::string_view(cleaned).substr(i, n)));
      }
    }
  }
  sparsenn::TokenSet set;
  set.reserve(raw.size());
  if (sparsenn::IsMultiset(model)) {
    std::unordered_map<std::uint64_t, std::uint32_t> occurrence;
    for (std::uint64_t h : raw) {
      set.push_back(HashCombine(h, ++occurrence[h]));
    }
  } else {
    set = std::move(raw);
  }
  std::sort(set.begin(), set.end());
  set.erase(std::unique(set.begin(), set.end()), set.end());
  return set;
}

std::vector<sparsenn::TokenSet> LegacyBuildSideTokenSets(
    const core::Dataset& dataset, int side, core::SchemaMode mode,
    sparsenn::TokenModel model, bool clean) {
  const std::size_t count =
      side == 0 ? dataset.e1().size() : dataset.e2().size();
  std::vector<sparsenn::TokenSet> sets;
  sets.reserve(count);
  for (core::EntityId id = 0; id < count; ++id) {
    sets.push_back(
        LegacyBuildTokenSet(dataset.EntityText(side, id, mode), model, clean));
  }
  return sets;
}

// Pre-PR TokenRankMap construction: unordered_map document frequencies, then
// the sort + flat-table fill (the fill was already flat; the node-based df
// table is what the TokenDict replaced).
std::size_t LegacyRankMapBuild(const std::vector<sparsenn::TokenSet>& sets) {
  std::unordered_map<std::uint64_t, std::uint32_t> frequency;
  for (const auto& set : sets) {
    for (std::uint64_t token : set) ++frequency[token];
  }
  std::vector<std::pair<std::uint32_t, std::uint64_t>> order;
  order.reserve(frequency.size());
  for (const auto& [token, df] : frequency) order.emplace_back(df, token);
  std::sort(order.begin(), order.end());
  std::size_t capacity = 16;
  while (capacity < order.size() * 2) capacity *= 2;
  struct Slot {
    std::uint64_t token = 0;
    std::uint32_t rank = 0;
    bool used = false;
  };
  std::vector<Slot> slots(capacity);
  const std::size_t mask = capacity - 1;
  for (std::uint32_t rank = 0; rank < order.size(); ++rank) {
    std::size_t pos = SplitMix64(order[rank].second) & mask;
    while (slots[pos].used) pos = (pos + 1) & mask;
    slots[pos] = {order[rank].second, rank, true};
  }
  return slots.size();
}

// Pre-PR ScanCountIndex build: the same CSR output, built by one sequential
// two-pass walk over a grow-as-you-go open table (no reserve, no chunking).
class SeedScanCountIndex {
 public:
  explicit SeedScanCountIndex(const std::vector<sparsenn::TokenSet>& sets) {
    set_sizes_.reserve(sets.size());
    for (const auto& set : sets) {
      set_sizes_.push_back(static_cast<std::uint32_t>(set.size()));
    }
    Rehash(16);
    std::vector<std::uint32_t> list_counts;
    for (const auto& set : sets) {
      for (std::uint64_t token : set) {
        const std::uint32_t list = InsertToken(token);
        if (list == list_counts.size()) list_counts.push_back(0);
        ++list_counts[list];
      }
    }
    offsets_.resize(list_counts.size() + 1);
    offsets_[0] = 0;
    for (std::size_t i = 0; i < list_counts.size(); ++i) {
      offsets_[i + 1] = offsets_[i] + list_counts[i];
    }
    postings_.resize(offsets_.back());
    list_min_size_.assign(list_counts.size(), 0xffffffffu);
    list_max_size_.assign(list_counts.size(), 0);
    std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
    for (std::uint32_t id = 0; id < sets.size(); ++id) {
      const std::uint32_t size = set_sizes_[id];
      for (std::uint64_t token : sets[id]) {
        const std::uint32_t list = FindList(token);
        postings_[cursor[list]++] = id;
        if (size < list_min_size_[list]) list_min_size_[list] = size;
        if (size > list_max_size_[list]) list_max_size_[list] = size;
      }
    }
  }
  std::size_t NumTokens() const { return offsets_.size() - 1; }

 private:
  struct Slot {
    std::uint64_t token = 0;
    std::uint32_t list = 0;
    bool used = false;
  };
  void Rehash(std::size_t capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(capacity, Slot{});
    const std::size_t mask = capacity - 1;
    for (const Slot& slot : old) {
      if (!slot.used) continue;
      std::size_t pos = SplitMix64(slot.token) & mask;
      while (slots_[pos].used) pos = (pos + 1) & mask;
      slots_[pos] = slot;
    }
  }
  std::uint32_t InsertToken(std::uint64_t token) {
    if ((distinct_tokens_ + 1) * 2 > slots_.size()) Rehash(slots_.size() * 2);
    const std::size_t mask = slots_.size() - 1;
    std::size_t pos = SplitMix64(token) & mask;
    while (slots_[pos].used && slots_[pos].token != token) {
      pos = (pos + 1) & mask;
    }
    if (!slots_[pos].used) {
      slots_[pos].used = true;
      slots_[pos].token = token;
      slots_[pos].list = static_cast<std::uint32_t>(distinct_tokens_++);
    }
    return slots_[pos].list;
  }
  std::uint32_t FindList(std::uint64_t token) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t pos = SplitMix64(token) & mask;
    while (slots_[pos].token != token) pos = (pos + 1) & mask;
    return slots_[pos].list;
  }
  std::vector<Slot> slots_;
  std::size_t distinct_tokens_ = 0;
  std::vector<std::uint32_t> offsets_;
  std::vector<std::uint32_t> postings_;
  std::vector<std::uint32_t> list_min_size_;
  std::vector<std::uint32_t> list_max_size_;
  std::vector<std::uint32_t> set_sizes_;
};

// Pre-PR ExtractKeys for the block-build cells (Standard and Q-Grams): a
// fresh normalized string, a fresh token vector and an owned std::string per
// key on every call — the allocation profile the scratch-based
// ExtractKeysInto replaced.
std::vector<std::string> LegacyExtractKeys(std::string_view text,
                                           const blocking::BuilderConfig& config) {
  std::vector<std::string> keys;
  const std::vector<std::string> tokens = SplitWhitespace(NormalizeText(text));
  for (const auto& token : tokens) {
    if (config.kind == blocking::BuilderKind::kStandard) {
      keys.push_back(token);
    } else {  // kQGrams; the build cells use no other kinds
      const int q = config.q;
      if (static_cast<int>(token.size()) <= q) {
        keys.emplace_back(token);
      } else {
        for (std::size_t i = 0; i + q <= token.size(); ++i) {
          keys.emplace_back(token.substr(i, q));
        }
      }
    }
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

// Pre-PR BuildBlocks: per-entity std::string text + node-map key table.
blocking::BlockCollection LegacyBuildBlocks(const core::Dataset& dataset,
                                            core::SchemaMode mode,
                                            const blocking::BuilderConfig& config) {
  blocking::BlockCollection blocks;
  std::unordered_map<std::string, std::size_t> key_to_block;
  auto index_side = [&](int side, std::size_t count) {
    for (core::EntityId id = 0; id < count; ++id) {
      const std::string text = dataset.EntityText(side, id, mode);
      for (auto& key : LegacyExtractKeys(text, config)) {
        auto [it, inserted] =
            key_to_block.try_emplace(std::move(key), blocks.size());
        if (inserted) blocks.emplace_back();
        blocking::Block& block = blocks[it->second];
        (side == 0 ? block.e1 : block.e2).push_back(id);
      }
    }
  };
  index_side(0, dataset.e1().size());
  index_side(1, dataset.e2().size());
  const bool proactive =
      config.kind == blocking::BuilderKind::kSuffixArrays ||
      config.kind == blocking::BuilderKind::kExtendedSuffixArrays;
  if (proactive) {
    std::erase_if(blocks, [&config](const blocking::Block& b) {
      return b.Assignments() >= static_cast<std::size_t>(config.b_max);
    });
  }
  blocking::DropUselessBlocks(&blocks);
  return blocks;
}

// --- forked peak-RSS measurement -------------------------------------------

// VmHWM of the calling process in KB (0 when /proc is unavailable).
long ReadVmHwmKb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  long kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %ld kB", &kb) == 1) break;
  }
  std::fclose(f);
  return kb;
}

struct RssMeasurement {
  std::string name;
  long kb;
};

std::vector<RssMeasurement> g_rss;

// Peak-RSS cost of fn() — transient build state plus the finished structure —
// measured in a forked child: fork resets the child's VmHWM high-water mark
// to its current RSS, so (VmHWM after fn) - (VmHWM before fn) isolates fn's
// footprint from whatever the parent already touched. Two subtleties make
// the warm() step essential: fork does not copy page-table entries for
// file-backed mappings, so the child re-faults every code page it executes —
// cells exercising different code (library vs bench-local) would be charged
// incomparable .text footprints; and the first malloc in a fresh child
// faults allocator metadata. warm() runs the same build over a tiny input
// first, so code pages and allocator state are resident before the baseline
// is read and the delta is (almost) purely fn's own heap. Returns -1 when
// the measurement is unavailable (no /proc, fork failure).
template <typename Warm, typename Fn>
long ForkedPeakRssKb(const std::string& name, Warm&& warm, Fn&& fn) {
  long kb = -1;
  int fds[2];
  if (pipe(fds) == 0) {
    const pid_t pid = fork();
    if (pid == 0) {
      close(fds[0]);
      warm();
      const long before = ReadVmHwmKb();
      fn();
      const long delta = before > 0 ? ReadVmHwmKb() - before : -1;
      (void)!write(fds[1], &delta, sizeof(delta));
      _exit(0);
    }
    close(fds[1]);
    if (pid > 0) {
      if (read(fds[0], &kb, sizeof(kb)) != sizeof(kb)) kb = -1;
      waitpid(pid, nullptr, 0);
    }
    close(fds[0]);
  }
  g_rss.push_back({name, kb});
  std::printf("  %-28s %9ld KB peak\n", name.c_str(), kb);
  return kb;
}

void BenchBuildCells(const core::Dataset& dataset, const SparseFixture& fixture) {
  std::printf("index builds (legacy substrate vs flat dictionaries):\n");

  // Tokenization: ProfileStore text + TokenDict occurrence counting against
  // per-entity string materialization + an unordered_map per entity.
  Record("tokenize_legacy", MedianNs(1, 5, [&]() {
           const auto sets = LegacyBuildSideTokenSets(
               dataset, 0, core::SchemaMode::kAgnostic,
               sparsenn::TokenModel::kC3GM, /*clean=*/true);
           return static_cast<double>(sets.size());
         }),
         dataset.e1().size());
  Record("tokenize", MedianNs(1, 5, [&]() {
           const auto sets = sparsenn::BuildSideTokenSets(
               dataset, 0, core::SchemaMode::kAgnostic,
               sparsenn::TokenModel::kC3GM, /*clean=*/true);
           return static_cast<double>(sets.size());
         }),
         dataset.e1().size());

  // Global-frequency rank map: TokenDict document frequencies against the
  // node-based unordered_map.
  Record("rankmap_build_legacy", MedianNs(1, 5, [&]() {
           return static_cast<double>(LegacyRankMapBuild(fixture.indexed));
         }),
         fixture.indexed.size());
  Record("rankmap_build", MedianNs(1, 5, [&]() {
           const sparsenn::TokenRankMap ranks(fixture.indexed);
           return static_cast<double>(ranks.NumRanked());
         }),
         fixture.indexed.size());

  // CSR inverted index: the chunked two-pass parallel build against the
  // sequential grow-as-you-go one (identical output, oracle-enforced).
  Record("csr_build_legacy", MedianNs(2, 7, [&]() {
           const SeedScanCountIndex index(fixture.indexed);
           return static_cast<double>(index.NumTokens());
         }),
         fixture.indexed.size());
  Record("csr_build", MedianNs(2, 7, [&]() {
           const sparsenn::ScanCountIndex index(fixture.indexed);
           return static_cast<double>(index.NumTokens());
         }),
         fixture.indexed.size());

  // Block building: StringDict interning + ProfileStore text against the
  // std::unordered_map<std::string, ...> key table (a string node per key).
  const std::size_t entities = dataset.e1().size() + dataset.e2().size();
  for (auto kind : {blocking::BuilderKind::kStandard,
                    blocking::BuilderKind::kQGrams}) {
    blocking::BuilderConfig config;
    config.kind = kind;
    const bool standard = kind == blocking::BuilderKind::kStandard;
    Record(standard ? "block_build_std_legacy" : "block_build_qg_legacy",
           MedianNs(1, 5, [&]() {
             const auto blocks = LegacyBuildBlocks(
                 dataset, core::SchemaMode::kAgnostic, config);
             return static_cast<double>(blocks.size());
           }),
           entities);
    Record(standard ? "block_build_std" : "block_build_qg",
           MedianNs(1, 5, [&]() {
             const auto blocks = blocking::BuildBlocks(
                 dataset, core::SchemaMode::kAgnostic, config);
             return static_cast<double>(blocks.size());
           }),
           entities);
  }

}

// Peak RSS of each build (transient + resident), forked per measurement so
// the high-water marks cannot mask each other. Runs before the timing
// sections: a fork inherits the parent's heap, so measuring from a
// still-pristine parent (only the dataset and fixture live) keeps the cells
// from reusing free chunks the earlier timing loops left behind — inherited
// pages don't count toward the child's VmHWM delta, fresh ones do.
void BenchBuildRss(const core::Dataset& dataset, const SparseFixture& fixture) {
  std::printf("build peak RSS (forked, warm-up then measure):\n");
  // Tiny warm-up inputs: the same code paths over 8 entities, so the child
  // faults in its code pages and allocator metadata before the baseline.
  const std::vector<sparsenn::TokenSet> tiny_sets(
      fixture.indexed.begin(),
      fixture.indexed.begin() + std::min<std::size_t>(8, fixture.indexed.size()));
  const core::Dataset tiny_dataset(
      "warmup",
      {dataset.e1().begin(),
       dataset.e1().begin() + std::min<std::size_t>(8, dataset.e1().size())},
      {dataset.e2().begin(),
       dataset.e2().begin() + std::min<std::size_t>(8, dataset.e2().size())},
      {}, dataset.best_attribute());
  ForkedPeakRssKb(
      "rss_csr_build_legacy",
      [&]() {
        const SeedScanCountIndex warm(tiny_sets);
        g_sink = g_sink + static_cast<double>(warm.NumTokens());
      },
      [&]() {
        const SeedScanCountIndex index(fixture.indexed);
        g_sink = g_sink + static_cast<double>(index.NumTokens());
      });
  ForkedPeakRssKb(
      "rss_csr_build",
      [&]() {
        const sparsenn::ScanCountIndex warm(tiny_sets);
        g_sink = g_sink + static_cast<double>(warm.NumTokens());
      },
      [&]() {
        const sparsenn::ScanCountIndex index(fixture.indexed);
        g_sink = g_sink + static_cast<double>(index.NumTokens());
      });
  ForkedPeakRssKb(
      "rss_rankmap_build_legacy",
      [&]() { g_sink = g_sink + static_cast<double>(LegacyRankMapBuild(tiny_sets)); },
      [&]() {
        g_sink = g_sink + static_cast<double>(LegacyRankMapBuild(fixture.indexed));
      });
  ForkedPeakRssKb(
      "rss_rankmap_build",
      [&]() {
        const sparsenn::TokenRankMap warm(tiny_sets);
        g_sink = g_sink + static_cast<double>(warm.NumRanked());
      },
      [&]() {
        const sparsenn::TokenRankMap ranks(fixture.indexed);
        g_sink = g_sink + static_cast<double>(ranks.NumRanked());
      });
  blocking::BuilderConfig qgrams;
  qgrams.kind = blocking::BuilderKind::kQGrams;
  ForkedPeakRssKb(
      "rss_block_build_qg_legacy",
      [&]() {
        const auto warm =
            LegacyBuildBlocks(tiny_dataset, core::SchemaMode::kAgnostic, qgrams);
        g_sink = g_sink + static_cast<double>(warm.size());
      },
      [&]() {
        const auto blocks =
            LegacyBuildBlocks(dataset, core::SchemaMode::kAgnostic, qgrams);
        g_sink = g_sink + static_cast<double>(blocks.size());
      });
  ForkedPeakRssKb(
      "rss_block_build_qg",
      [&]() {
        const auto warm = blocking::BuildBlocks(
            tiny_dataset, core::SchemaMode::kAgnostic, qgrams);
        g_sink = g_sink + static_cast<double>(warm.size());
      },
      [&]() {
        const auto blocks =
            blocking::BuildBlocks(dataset, core::SchemaMode::kAgnostic, qgrams);
        g_sink = g_sink + static_cast<double>(blocks.size());
      });
  const blocking::BuilderConfig standard_cfg;
  ForkedPeakRssKb(
      "rss_block_build_std_legacy",
      [&]() {
        const auto warm = LegacyBuildBlocks(
            tiny_dataset, core::SchemaMode::kAgnostic, standard_cfg);
        g_sink = g_sink + static_cast<double>(warm.size());
      },
      [&]() {
        const auto blocks = LegacyBuildBlocks(
            dataset, core::SchemaMode::kAgnostic, standard_cfg);
        g_sink = g_sink + static_cast<double>(blocks.size());
      });
  ForkedPeakRssKb(
      "rss_block_build_std",
      [&]() {
        const auto warm = blocking::BuildBlocks(
            tiny_dataset, core::SchemaMode::kAgnostic, standard_cfg);
        g_sink = g_sink + static_cast<double>(warm.size());
      },
      [&]() {
        const auto blocks = blocking::BuildBlocks(
            dataset, core::SchemaMode::kAgnostic, standard_cfg);
        g_sink = g_sink + static_cast<double>(blocks.size());
      });
}

// --- reporting -------------------------------------------------------------

double NsPerOp(const std::string& name) {
  for (const auto& m : g_measurements) {
    if (m.name == name) return m.ns_per_op;
  }
  return 0.0;
}

struct Speedup {
  std::string name;
  double factor;
};

std::vector<Speedup> ComputeSpeedups() {
  auto ratio = [](double base, double opt) {
    return opt > 0.0 ? base / opt : 0.0;
  };
  std::vector<Speedup> speedups = {
      {"dot", ratio(NsPerOp("dot_scalar"), NsPerOp("dot_dispatch"))},
      {"l2", ratio(NsPerOp("l2_scalar"), NsPerOp("l2_dispatch"))},
      {"axpy", ratio(NsPerOp("axpy_scalar"), NsPerOp("axpy_dispatch"))},
      // Headline probe speedups: the PR's CSR layout + branchless walk +
      // length filter against the pre-PR nested-list probe. The layout/filter
      // components are also reported separately below.
      {"probe_t0.5",
       ratio(NsPerOp("probe_legacy_t0.5"), NsPerOp("probe_filtered_t0.5"))},
      {"probe_t0.7",
       ratio(NsPerOp("probe_legacy_t0.7"), NsPerOp("probe_filtered_t0.7"))},
      {"probe_layout_t0.5",
       ratio(NsPerOp("probe_legacy_t0.5"), NsPerOp("probe_unfiltered_t0.5"))},
      {"probe_filter_t0.5", ratio(NsPerOp("probe_unfiltered_t0.5"),
                                  NsPerOp("probe_filtered_t0.5"))},
      {"probe_filter_t0.7", ratio(NsPerOp("probe_unfiltered_t0.7"),
                                  NsPerOp("probe_filtered_t0.7"))},
  };
  // PR 6 headline: prefix/positional-filtered probes against the length-
  // filter-only baseline, identical inputs and surviving candidates per
  // cell. `probe_prefix_geomean` aggregates every ε-Join cell — including
  // the low-threshold ones where the prefix filter is expected to lose.
  double product = 1.0;
  std::size_t cells = 0;
  for (const char* suffix : {"", "_jac"}) {
    for (double threshold : {0.5, 0.7, 0.9}) {
      char base[64], opt[64];
      std::snprintf(base, sizeof(base), "probe_filtered%s_t%.1f", suffix,
                    threshold);
      std::snprintf(opt, sizeof(opt), "probe_prefix%s_t%.1f", suffix,
                    threshold);
      const double factor = ratio(NsPerOp(base), NsPerOp(opt));
      speedups.push_back({std::string("probe_prefix") + suffix + "_t" +
                              (threshold == 0.5   ? "0.5"
                               : threshold == 0.7 ? "0.7"
                                                  : "0.9"),
                          factor});
      product *= factor;
      ++cells;
    }
  }
  speedups.push_back(
      {"probe_prefix_geomean",
       cells > 0 ? std::pow(product, 1.0 / static_cast<double>(cells)) : 0.0});
  speedups.push_back({"knn_probe_prefix_k10",
                      ratio(NsPerOp("knn_probe_unfiltered_k10"),
                            NsPerOp("knn_probe_prefix_k10"))});

  // PR 8 headline: the build-path substrate (flat dictionaries + columnar
  // profile store + chunked two-pass builds) against the reproduced pre-PR
  // builds, geomeaned over every build cell.
  double build_log_sum = 0.0;
  std::size_t build_cells = 0;
  for (const char* cell : {"tokenize", "rankmap_build", "csr_build",
                           "block_build_std", "block_build_qg"}) {
    const double factor =
        ratio(NsPerOp(std::string(cell) + "_legacy"), NsPerOp(cell));
    speedups.push_back({std::string("build_") + cell, factor});
    if (factor > 0.0) {
      build_log_sum += std::log(factor);
      ++build_cells;
    }
  }
  speedups.push_back(
      {"build_geomean",
       build_cells > 0
           ? std::exp(build_log_sum / static_cast<double>(build_cells))
           : 0.0});
  return speedups;
}

void WriteJson(const std::string& path, const std::vector<Speedup>& speedups) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "micro_kernels: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"backend\": \"%s\",\n  \"benchmarks\": [\n",
               std::string(simd::KindName(simd::ActiveKind())).c_str());
  for (std::size_t i = 0; i < g_measurements.size(); ++i) {
    const auto& m = g_measurements[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"ns_per_op\": %.2f, \"ops\": %llu}%s\n",
                 m.name.c_str(), m.ns_per_op,
                 static_cast<unsigned long long>(m.ops),
                 i + 1 < g_measurements.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"peak_rss_kb\": {\n");
  for (std::size_t i = 0; i < g_rss.size(); ++i) {
    std::fprintf(f, "    \"%s\": %ld%s\n", g_rss[i].name.c_str(), g_rss[i].kb,
                 i + 1 < g_rss.size() ? "," : "");
  }
  std::fprintf(f, "  },\n  \"speedups\": {\n");
  for (std::size_t i = 0; i < speedups.size(); ++i) {
    std::fprintf(f, "    \"%s\": %.2f%s\n", speedups[i].name.c_str(),
                 speedups[i].factor, i + 1 < speedups.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      erb::SetNumThreads(std::strtoull(argv[i] + 10, nullptr, 10));
    } else {
      std::fprintf(stderr, "usage: micro_kernels [--json=PATH] [--threads=N]\n");
      return 1;
    }
  }

  const core::Dataset dataset = datagen::Generate(datagen::PaperSpec(2));
  const SparseFixture fixture = BuildSparseFixture(dataset);
  BenchBuildRss(dataset, fixture);
  BenchDenseKernels();
  BenchSparseProbes(fixture);
  BenchBuildCells(dataset, fixture);

  const auto speedups = ComputeSpeedups();
  std::printf("speedups (baseline / optimized):\n");
  for (const auto& s : speedups) {
    std::printf("  %-12s %.2fx\n", s.name.c_str(), s.factor);
  }
  if (!json_path.empty()) WriteJson(json_path, speedups);
  return 0;
}
